package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALDecode drives the record decoder and the torn-tail recovery scan
// with corrupt, truncated and bit-flipped log images. The properties under
// test are the crash-safety contract of DESIGN.md §7:
//
//  1. decodeRecord never panics on arbitrary bytes, never over-consumes,
//     and any frame it accepts re-encodes to the identical bytes (the
//     framing is canonical).
//  2. Truncating an encoded stream at any byte recovers exactly the
//     records whose frames fit entirely before the cut — a torn tail never
//     drops an intact prefix record and never invents a record.
//  3. Flipping any single bit corrupts at most the frame it lands in and
//     everything after it: records in earlier frames are recovered intact.
//  4. Open's recovery scan agrees with the pure decoder and physically
//     truncates the torn tail.
func FuzzWALDecode(f *testing.F) {
	// Seeds: an empty log, raw garbage, a valid two-record stream, and a
	// stream with a crafted oversized length prefix.
	f.Add([]byte{}, uint16(0), uint32(0))
	f.Add([]byte("not a wal log at all, just bytes"), uint16(7), uint32(13))
	var seed []byte
	seed, _ = appendRecord(seed, Record{Product: "p0", Rater: "alice", Value: 4.5, Day: 3, ReceivedUnixNano: 42})
	seed, _ = appendRecord(seed, Record{Product: "p1", Rater: "bob", Value: 1, Day: 61})
	f.Add(seed, uint16(len(seed)-1), uint32(5))
	huge := binary.LittleEndian.AppendUint32(nil, maxRecordSize+1)
	f.Add(append(huge, seed...), uint16(3), uint32(100))

	f.Fuzz(func(t *testing.T, raw []byte, cut uint16, flip uint32) {
		// (1) Arbitrary bytes: scan to the end without panicking; accepted
		// frames must round-trip byte-for-byte.
		off := 0
		for off < len(raw) {
			r, n, ok := decodeRecord(raw[off:])
			if !ok {
				break
			}
			if n <= 0 || off+n > len(raw) {
				t.Fatalf("decodeRecord consumed %d bytes of %d available", n, len(raw)-off)
			}
			re, err := appendRecord(nil, r)
			if err != nil {
				t.Fatalf("re-encode of accepted record failed: %v", err)
			}
			if !bytes.Equal(re, raw[off:off+n]) {
				t.Fatalf("accepted frame is not canonical: %x vs %x", raw[off:off+n], re)
			}
			off += n
		}

		// Build a known-good stream from the fuzz input.
		recs := deriveRecords(raw)
		if len(recs) == 0 {
			return
		}
		var stream []byte
		frameEnd := make([]int, len(recs)) // byte offset just past frame i
		for i, r := range recs {
			var err error
			stream, err = appendRecord(stream, r)
			if err != nil {
				t.Fatalf("encode derived record: %v", err)
			}
			frameEnd[i] = len(stream)
		}

		// (2) Torn tail: every cut point keeps exactly the full frames.
		cutAt := int(cut) % (len(stream) + 1)
		wantIntact := 0
		for wantIntact < len(recs) && frameEnd[wantIntact] <= cutAt {
			wantIntact++
		}
		got := scanRecords(stream[:cutAt])
		if len(got) != wantIntact {
			t.Fatalf("cut at %d: recovered %d records, want %d intact", cutAt, len(got), wantIntact)
		}
		for i := 0; i < wantIntact; i++ {
			requireSameRecord(t, fmt.Sprintf("cut %d record %d", cutAt, i), recs[i], got[i])
		}

		// (3) Bit flip: frames before the flipped byte's frame survive.
		flipAt := int(flip) % (len(stream) * 8)
		flipped := append([]byte(nil), stream...)
		flipped[flipAt/8] ^= 1 << (flipAt % 8)
		frame := 0
		for frame < len(recs) && frameEnd[frame] <= flipAt/8 {
			frame++
		}
		got = scanRecords(flipped)
		if len(got) < frame {
			t.Fatalf("bit flip in frame %d dropped intact prefix: got %d records", frame, len(got))
		}
		for i := 0; i < frame; i++ {
			requireSameRecord(t, fmt.Sprintf("flip bit %d record %d", flipAt, i), recs[i], got[i])
		}

		// (4) Open agrees with the pure scan and truncates the torn tail.
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, logName), stream[:cutAt], 0o644); err != nil {
			t.Fatal(err)
		}
		fsys, err := OSDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		w, rec, err := Open(fsys, Options{})
		if err != nil {
			t.Fatalf("Open on truncated log: %v", err)
		}
		defer w.Close()
		if len(rec.Records) != wantIntact {
			t.Fatalf("Open recovered %d records, want %d", len(rec.Records), wantIntact)
		}
		intactBytes := 0
		if wantIntact > 0 {
			intactBytes = frameEnd[wantIntact-1]
		}
		if rec.TruncatedBytes != int64(cutAt-intactBytes) {
			t.Fatalf("TruncatedBytes = %d, want %d", rec.TruncatedBytes, cutAt-intactBytes)
		}
		if info, err := os.Stat(filepath.Join(dir, logName)); err != nil || info.Size() != int64(intactBytes) {
			t.Fatalf("log not truncated to intact prefix: size %v err %v, want %d", info, err, intactBytes)
		}
	})
}

// scanRecords decodes records from the front of data until the first torn
// or corrupt frame, like readLog's scan.
func scanRecords(data []byte) []Record {
	var out []Record
	off := 0
	for off < len(data) {
		r, n, ok := decodeRecord(data[off:])
		if !ok {
			break
		}
		out = append(out, r)
		off += n
	}
	return out
}

// deriveRecords builds up to 8 valid records from fuzz bytes, covering
// empty and non-UTF-8 IDs and arbitrary float bit patterns.
func deriveRecords(raw []byte) []Record {
	var out []Record
	for i := 0; i+16 <= len(raw) && len(out) < 8; i += 16 {
		c := raw[i : i+16]
		out = append(out, Record{
			Product:          string(c[0 : 0+int(c[1])%3]),
			Rater:            string(c[2 : 2+int(c[3])%4]),
			Value:            math.Float64frombits(binary.LittleEndian.Uint64(c[4:12])),
			Day:              float64(binary.LittleEndian.Uint16(c[12:14])),
			ReceivedUnixNano: int64(c[14])<<8 | int64(c[15]),
		})
	}
	return out
}

// requireSameRecord compares records bit-exactly (NaN-valued floats
// included — recovery must not rewrite even a broken payload value).
func requireSameRecord(t *testing.T, label string, want, got Record) {
	t.Helper()
	if want.Product != got.Product || want.Rater != got.Rater ||
		math.Float64bits(want.Value) != math.Float64bits(got.Value) ||
		math.Float64bits(want.Day) != math.Float64bits(got.Day) ||
		want.ReceivedUnixNano != got.ReceivedUnixNano {
		t.Fatalf("%s: record %+v != %+v", label, got, want)
	}
}
