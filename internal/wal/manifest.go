package wal

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
)

// Manifest file names inside a sharded WAL base directory.
const (
	manifestName = "wal-manifest.json"
	manifestTmp  = "wal-manifest.tmp"
)

// ManifestVersion is the current manifest format version.
const ManifestVersion = 1

// RouteHashName identifies the product→shard routing function recorded in
// the manifest. A reader with a different routing function must refuse the
// directory: records in shard-NNN/ are only meaningful under the hash that
// put them there.
const RouteHashName = "fnv1a64"

// Manifest describes a sharded WAL directory: the base directory holds
// wal-manifest.json plus one shard-NNN/ subdirectory per shard, each an
// independent WAL (snapshot.json + wal.log). A directory without a
// manifest is the legacy single-stream layout (snapshot + log at the top
// level). The manifest pins the shard count and routing hash so a reopen
// with different parameters fails loudly instead of silently splitting
// products across the wrong logs.
type Manifest struct {
	Version int    `json:"version"`
	Shards  int    `json:"shards"`
	Hash    string `json:"hash"`
}

// ShardDir returns the subdirectory name for shard i ("shard-000", ...).
func ShardDir(i int) string { return fmt.Sprintf("shard-%03d", i) }

// ReadManifest reads the shard manifest from the base directory. A missing
// manifest returns (nil, nil): the directory uses the legacy layout.
func ReadManifest(fsys FS) (*Manifest, error) {
	f, err := fsys.Open(manifestName)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("wal: open manifest: %w", err)
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, fmt.Errorf("wal: read manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("wal: decode manifest: %w", err)
	}
	if m.Version != ManifestVersion {
		return nil, fmt.Errorf("wal: manifest version %d not supported (want %d)", m.Version, ManifestVersion)
	}
	if m.Shards < 1 {
		return nil, fmt.Errorf("wal: manifest shard count %d invalid", m.Shards)
	}
	return &m, nil
}

// WriteManifest durably publishes the shard manifest: write to a temporary
// file, fsync, then atomically rename into place. A crash leaves either no
// manifest (the directory reads as legacy/fresh) or a complete one.
func WriteManifest(fsys FS, m Manifest) error {
	data, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("wal: encode manifest: %w", err)
	}
	f, err := fsys.Create(manifestTmp)
	if err != nil {
		return fmt.Errorf("wal: create manifest tmp: %w", err)
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		return fmt.Errorf("wal: write manifest: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: sync manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: close manifest: %w", err)
	}
	if err := fsys.Rename(manifestTmp, manifestName); err != nil {
		return fmt.Errorf("wal: publish manifest: %w", err)
	}
	return nil
}

// RemoveManifest deletes the manifest (and any stale temporary), reverting
// the directory to the legacy layout from the manifest's point of view.
func RemoveManifest(fsys FS) error {
	if err := fsys.Remove(manifestTmp); err != nil {
		return err
	}
	return fsys.Remove(manifestName)
}

// HasLegacyState reports whether the base directory holds legacy
// single-stream WAL state (a top-level snapshot or log).
func HasLegacyState(fsys FS) bool {
	for _, name := range []string{logName, snapshotName} {
		if n, err := fsys.Size(name); err == nil && n >= 0 {
			return true
		}
	}
	return false
}

// RemoveLegacyState deletes the legacy top-level snapshot, log, and
// temporary snapshot — the final step of a legacy→sharded migration.
func RemoveLegacyState(fsys FS) error {
	for _, name := range []string{logName, snapshotName, snapshotTmp} {
		if err := fsys.Remove(name); err != nil {
			return err
		}
	}
	return nil
}

// SubdirFS is implemented by FS backends that can root themselves in a
// subdirectory natively (the production osDir creates the directory on
// disk). Backends without it get a name-prefix wrapper from Sub, which is
// all a flat-namespace FS (internal/faultfs) needs.
type SubdirFS interface {
	Sub(dir string) (FS, error)
}

// Sub returns an FS rooted at dir inside fsys: natively when fsys
// implements SubdirFS, otherwise by prefixing every name with "dir/".
func Sub(fsys FS, dir string) (FS, error) {
	if s, ok := fsys.(SubdirFS); ok {
		return s.Sub(dir)
	}
	return prefixFS{fs: fsys, prefix: dir + "/"}, nil
}

// prefixFS scopes a flat-namespace FS to a subdirectory by name prefix.
type prefixFS struct {
	fs     FS
	prefix string
}

func (p prefixFS) Create(name string) (File, error)     { return p.fs.Create(p.prefix + name) }
func (p prefixFS) Open(name string) (File, error)       { return p.fs.Open(p.prefix + name) }
func (p prefixFS) OpenAppend(name string) (File, error) { return p.fs.OpenAppend(p.prefix + name) }
func (p prefixFS) Rename(oldname, newname string) error {
	return p.fs.Rename(p.prefix+oldname, p.prefix+newname)
}
func (p prefixFS) Remove(name string) error               { return p.fs.Remove(p.prefix + name) }
func (p prefixFS) Truncate(name string, size int64) error { return p.fs.Truncate(p.prefix+name, size) }
func (p prefixFS) Size(name string) (int64, error)        { return p.fs.Size(p.prefix + name) }
