// Package faultfs is a fault-injection harness for the write-ahead log: an
// in-memory filesystem implementing wal.FS whose failures are injectable —
// fsync errors after N successful syncs, short writes once a byte budget
// is exhausted (simulating a process killed mid-write), fsync stalls and
// per-operation latency (a pathological disk), ENOSPC once a space budget
// runs out, and byte-exact crash images for kill-anywhere recovery testing.
//
// Two crash models are available:
//
//   - Clone copies every written byte — the model for a process kill, where
//     the page cache survives and the kernel eventually flushes it.
//   - CrashImage keeps only bytes covered by a successful Sync — the model
//     for a power loss, where unsynced data is gone. It is the observable
//     behind the chaos harness's "no acknowledged-durable write is ever
//     lost" invariant: a rating acked durable must be inside the synced
//     prefix, a rating acked pending may legitimately vanish.
//
// It exists for tests only; production code uses wal.OSDir.
package faultfs

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"syscall"
	"time"

	"repro/internal/wal"
)

// ErrInjected is the base error for all injected faults; test assertions
// can errors.Is against it.
var ErrInjected = errors.New("faultfs: injected fault")

// FS is an in-memory filesystem with injectable faults. The zero value is
// not usable; construct with New. All methods are safe for concurrent use.
type FS struct {
	mu     sync.Mutex
	files  map[string][]byte
	synced map[string]int // per-file byte length covered by the last Sync

	syncErr       error // returned by Sync once armed
	syncsUntilErr int   // successful syncs remaining before syncErr arms; -1 = never
	syncs         int   // total successful syncs observed

	writeBudget int64 // bytes writable before writes start failing; -1 = unlimited

	spaceBudget int64 // bytes writable before ENOSPC; -1 = unlimited

	syncStall time.Duration // every Sync sleeps this long (stalled disk)
	opLatency time.Duration // every Write and Sync sleeps this long (slow disk)
}

var _ wal.FS = (*FS)(nil)

// New returns an empty in-memory FS with no faults armed.
func New() *FS {
	return &FS{
		files:         make(map[string][]byte),
		synced:        make(map[string]int),
		syncsUntilErr: -1,
		writeBudget:   -1,
		spaceBudget:   -1,
	}
}

// FailSyncsAfter arms an fsync fault: the next n Sync calls succeed, every
// one after that returns an error wrapping ErrInjected. Pass n=0 to fail
// immediately.
func (f *FS) FailSyncsAfter(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.syncsUntilErr = n
	f.syncErr = fmt.Errorf("%w: fsync refused", ErrInjected)
}

// StallSyncs arms an fsync stall: every subsequent Sync blocks for d before
// completing (successfully), simulating a disk whose write cache is
// saturated. Pass 0 to disarm. The stall is served without holding the FS
// lock, so concurrent writes and crash images proceed while a sync stalls —
// matching a real kernel, where fsync blocks only its caller.
func (f *FS) StallSyncs(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.syncStall = d
}

// SetOpLatency arms uniform device latency: every Write and Sync sleeps d
// before completing. Pass 0 to disarm. Latency composes with StallSyncs
// (a stalled sync sleeps latency + stall).
func (f *FS) SetOpLatency(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.opLatency = d
}

// LimitSpace arms a disk-full fault: after n more bytes have been written
// (across all files), writes fail with an error wrapping both ErrInjected
// and syscall.ENOSPC. A write that straddles the budget applies only its
// first bytes, exactly like a real filesystem running out of blocks
// mid-write. Pass -1 to disarm.
func (f *FS) LimitSpace(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.spaceBudget = n
}

// ClearFaults disarms all injected faults.
func (f *FS) ClearFaults() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.syncsUntilErr = -1
	f.syncErr = nil
	f.writeBudget = -1
	f.spaceBudget = -1
	f.syncStall = 0
	f.opLatency = 0
}

// SyncCount reports how many Sync calls have succeeded, across all files —
// the observable for asserting group-commit amortization.
func (f *FS) SyncCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.syncs
}

// LimitWrites arms a crash-at-byte fault: after n more bytes have been
// written (across all files), writes fail. A write that straddles the
// budget applies only its first bytes and returns a short-write error —
// exactly what a process killed mid-write leaves on disk.
func (f *FS) LimitWrites(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writeBudget = n
}

// ReadFile returns a copy of the file's current contents.
func (f *FS) ReadFile(name string) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	data, ok := f.files[name]
	if !ok {
		return nil, fmt.Errorf("faultfs: %s: %w", name, os.ErrNotExist)
	}
	return append([]byte(nil), data...), nil
}

// WriteFile replaces the file's contents, bypassing fault injection — for
// constructing disk images (e.g. a crash-truncated log) in tests. The
// contents count as synced.
func (f *FS) WriteFile(name string, data []byte) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.files[name] = append([]byte(nil), data...)
	f.synced[name] = len(data)
}

// Clone returns an independent copy of the filesystem contents with no
// faults armed — a process-kill image: everything written so far survives
// (the page cache outlives the process), everything after is gone.
func (f *FS) Clone() *FS {
	f.mu.Lock()
	defer f.mu.Unlock()
	c := New()
	for name, data := range f.files {
		c.files[name] = append([]byte(nil), data...)
		c.synced[name] = f.synced[name]
	}
	return c
}

// CrashImage returns an independent copy holding only the bytes covered by
// a successful Sync — a power-loss image: the unsynced tail of every file
// is torn away. Files never synced survive as empty (their directory entry
// exists; their data was still in cache). No faults are armed on the image.
func (f *FS) CrashImage() *FS {
	f.mu.Lock()
	defer f.mu.Unlock()
	c := New()
	for name, data := range f.files {
		n := f.synced[name]
		if n > len(data) {
			n = len(data)
		}
		c.files[name] = append([]byte(nil), data[:n]...)
		c.synced[name] = n
	}
	return c
}

// file is an open handle. Reads serve a point-in-time snapshot taken at
// open (matching a read-only *os.File well enough for the WAL's
// read-all-then-close usage); writes go straight to the shared store so a
// crash image sees them.
type file struct {
	fs     *FS
	name   string
	rdata  []byte // snapshot for reads
	roff   int
	write  bool
	closed bool
}

func (f *FS) Create(name string) (wal.File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.files[name] = nil
	f.synced[name] = 0
	return &file{fs: f, name: name, write: true}, nil
}

func (f *FS) Open(name string) (wal.File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	data, ok := f.files[name]
	if !ok {
		return nil, fmt.Errorf("faultfs: %s: %w", name, os.ErrNotExist)
	}
	return &file{fs: f, name: name, rdata: append([]byte(nil), data...)}, nil
}

func (f *FS) OpenAppend(name string) (wal.File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.files[name]; !ok {
		f.files[name] = nil
	}
	return &file{fs: f, name: name, write: true}, nil
}

func (f *FS) Rename(oldname, newname string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	data, ok := f.files[oldname]
	if !ok {
		return fmt.Errorf("faultfs: %s: %w", oldname, os.ErrNotExist)
	}
	f.files[newname] = data
	f.synced[newname] = f.synced[oldname]
	delete(f.files, oldname)
	delete(f.synced, oldname)
	return nil
}

func (f *FS) Remove(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.files, name)
	delete(f.synced, name)
	return nil
}

func (f *FS) Truncate(name string, size int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	data, ok := f.files[name]
	if !ok {
		return fmt.Errorf("faultfs: %s: %w", name, os.ErrNotExist)
	}
	if int64(len(data)) < size {
		return fmt.Errorf("faultfs: truncate %s beyond length", name)
	}
	f.files[name] = data[:size]
	// Truncation is metadata, journaled by any real filesystem: the new
	// (shorter) length is what a crash image sees.
	if f.synced[name] > int(size) {
		f.synced[name] = int(size)
	}
	return nil
}

func (f *FS) Size(name string) (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	data, ok := f.files[name]
	if !ok {
		return 0, fmt.Errorf("faultfs: %s: %w", name, os.ErrNotExist)
	}
	return int64(len(data)), nil
}

func (h *file) Read(p []byte) (int, error) {
	if h.closed {
		return 0, os.ErrClosed
	}
	if h.roff >= len(h.rdata) {
		return 0, io.EOF
	}
	n := copy(p, h.rdata[h.roff:])
	h.roff += n
	return n, nil
}

func (h *file) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	if h.closed || !h.write {
		h.fs.mu.Unlock()
		return 0, os.ErrClosed
	}
	if lat := h.fs.opLatency; lat > 0 {
		// Sleep outside the lock: a slow device delays its caller, not
		// every other handle.
		h.fs.mu.Unlock()
		time.Sleep(lat)
		h.fs.mu.Lock()
		if h.closed {
			h.fs.mu.Unlock()
			return 0, os.ErrClosed
		}
	}
	defer h.fs.mu.Unlock()
	n := len(p)
	var failure error
	if h.fs.writeBudget >= 0 {
		if int64(n) > h.fs.writeBudget {
			n = int(h.fs.writeBudget)
			failure = fmt.Errorf("%w: short write after %d bytes", ErrInjected, n)
		}
		h.fs.writeBudget -= int64(n)
	}
	if failure == nil && h.fs.spaceBudget >= 0 {
		if int64(n) > h.fs.spaceBudget {
			n = int(h.fs.spaceBudget)
			failure = fmt.Errorf("%w: write %s: %w", ErrInjected, h.name, syscall.ENOSPC)
		}
		h.fs.spaceBudget -= int64(n)
	}
	h.fs.files[h.name] = append(h.fs.files[h.name], p[:n]...)
	return n, failure
}

func (h *file) Sync() error {
	h.fs.mu.Lock()
	if h.closed {
		h.fs.mu.Unlock()
		return os.ErrClosed
	}
	if d := h.fs.opLatency + h.fs.syncStall; d > 0 {
		// Stall outside the lock: fsync blocks its caller while concurrent
		// writes, syncs on other handles, and crash images proceed.
		h.fs.mu.Unlock()
		time.Sleep(d)
		h.fs.mu.Lock()
		if h.closed {
			h.fs.mu.Unlock()
			return os.ErrClosed
		}
	}
	defer h.fs.mu.Unlock()
	if h.fs.syncErr != nil {
		if h.fs.syncsUntilErr <= 0 {
			return h.fs.syncErr
		}
		h.fs.syncsUntilErr--
	}
	h.fs.syncs++
	// Everything written to this file so far — including bytes landed
	// during the stall — is on stable storage now.
	h.fs.synced[h.name] = len(h.fs.files[h.name])
	return nil
}

func (h *file) Close() error {
	h.closed = true
	return nil
}
