// Package faultfs is a fault-injection harness for the write-ahead log: an
// in-memory filesystem implementing wal.FS whose failures are injectable —
// fsync errors after N successful syncs, short writes once a byte budget
// is exhausted (simulating a process killed mid-write), and byte-exact
// crash images for kill-anywhere recovery testing.
//
// It exists for tests only; production code uses wal.OSDir.
package faultfs

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"repro/internal/wal"
)

// ErrInjected is the base error for all injected faults; test assertions
// can errors.Is against it.
var ErrInjected = errors.New("faultfs: injected fault")

// FS is an in-memory filesystem with injectable faults. The zero value is
// not usable; construct with New. All methods are safe for concurrent use.
type FS struct {
	mu    sync.Mutex
	files map[string][]byte

	syncErr       error // returned by Sync once armed
	syncsUntilErr int   // successful syncs remaining before syncErr arms; -1 = never
	syncs         int   // total successful syncs observed

	writeBudget int64 // bytes writable before writes start failing; -1 = unlimited
}

var _ wal.FS = (*FS)(nil)

// New returns an empty in-memory FS with no faults armed.
func New() *FS {
	return &FS{files: make(map[string][]byte), syncsUntilErr: -1, writeBudget: -1}
}

// FailSyncsAfter arms an fsync fault: the next n Sync calls succeed, every
// one after that returns an error wrapping ErrInjected. Pass n=0 to fail
// immediately.
func (f *FS) FailSyncsAfter(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.syncsUntilErr = n
	f.syncErr = fmt.Errorf("%w: fsync refused", ErrInjected)
}

// ClearFaults disarms all injected faults.
func (f *FS) ClearFaults() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.syncsUntilErr = -1
	f.syncErr = nil
	f.writeBudget = -1
}

// SyncCount reports how many Sync calls have succeeded, across all files —
// the observable for asserting group-commit amortization.
func (f *FS) SyncCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.syncs
}

// LimitWrites arms a crash-at-byte fault: after n more bytes have been
// written (across all files), writes fail. A write that straddles the
// budget applies only its first bytes and returns a short-write error —
// exactly what a process killed mid-write leaves on disk.
func (f *FS) LimitWrites(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writeBudget = n
}

// ReadFile returns a copy of the file's current contents.
func (f *FS) ReadFile(name string) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	data, ok := f.files[name]
	if !ok {
		return nil, fmt.Errorf("faultfs: %s: %w", name, os.ErrNotExist)
	}
	return append([]byte(nil), data...), nil
}

// WriteFile replaces the file's contents, bypassing fault injection — for
// constructing disk images (e.g. a crash-truncated log) in tests.
func (f *FS) WriteFile(name string, data []byte) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.files[name] = append([]byte(nil), data...)
}

// Clone returns an independent copy of the filesystem contents with no
// faults armed — a crash image: everything written so far survives,
// everything after is gone.
func (f *FS) Clone() *FS {
	f.mu.Lock()
	defer f.mu.Unlock()
	c := New()
	for name, data := range f.files {
		c.files[name] = append([]byte(nil), data...)
	}
	return c
}

// file is an open handle. Reads serve a point-in-time snapshot taken at
// open (matching a read-only *os.File well enough for the WAL's
// read-all-then-close usage); writes go straight to the shared store so a
// crash image sees them.
type file struct {
	fs     *FS
	name   string
	rdata  []byte // snapshot for reads
	roff   int
	write  bool
	closed bool
}

func (f *FS) Create(name string) (wal.File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.files[name] = nil
	return &file{fs: f, name: name, write: true}, nil
}

func (f *FS) Open(name string) (wal.File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	data, ok := f.files[name]
	if !ok {
		return nil, fmt.Errorf("faultfs: %s: %w", name, os.ErrNotExist)
	}
	return &file{fs: f, name: name, rdata: append([]byte(nil), data...)}, nil
}

func (f *FS) OpenAppend(name string) (wal.File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.files[name]; !ok {
		f.files[name] = nil
	}
	return &file{fs: f, name: name, write: true}, nil
}

func (f *FS) Rename(oldname, newname string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	data, ok := f.files[oldname]
	if !ok {
		return fmt.Errorf("faultfs: %s: %w", oldname, os.ErrNotExist)
	}
	f.files[newname] = data
	delete(f.files, oldname)
	return nil
}

func (f *FS) Remove(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.files, name)
	return nil
}

func (f *FS) Truncate(name string, size int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	data, ok := f.files[name]
	if !ok {
		return fmt.Errorf("faultfs: %s: %w", name, os.ErrNotExist)
	}
	if int64(len(data)) < size {
		return fmt.Errorf("faultfs: truncate %s beyond length", name)
	}
	f.files[name] = data[:size]
	return nil
}

func (f *FS) Size(name string) (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	data, ok := f.files[name]
	if !ok {
		return 0, fmt.Errorf("faultfs: %s: %w", name, os.ErrNotExist)
	}
	return int64(len(data)), nil
}

func (h *file) Read(p []byte) (int, error) {
	if h.closed {
		return 0, os.ErrClosed
	}
	if h.roff >= len(h.rdata) {
		return 0, io.EOF
	}
	n := copy(p, h.rdata[h.roff:])
	h.roff += n
	return n, nil
}

func (h *file) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed || !h.write {
		return 0, os.ErrClosed
	}
	n := len(p)
	var failure error
	if h.fs.writeBudget >= 0 {
		if int64(n) > h.fs.writeBudget {
			n = int(h.fs.writeBudget)
			failure = fmt.Errorf("%w: short write after %d bytes", ErrInjected, n)
		}
		h.fs.writeBudget -= int64(n)
	}
	h.fs.files[h.name] = append(h.fs.files[h.name], p[:n]...)
	return n, failure
}

func (h *file) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return os.ErrClosed
	}
	if h.fs.syncErr != nil {
		if h.fs.syncsUntilErr <= 0 {
			return h.fs.syncErr
		}
		h.fs.syncsUntilErr--
	}
	h.fs.syncs++
	return nil
}

func (h *file) Close() error {
	h.closed = true
	return nil
}
