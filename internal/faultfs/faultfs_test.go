package faultfs

import (
	"errors"
	"io"
	"os"
	"syscall"
	"testing"
	"time"
)

func TestCreateWriteReadRoundtrip(t *testing.T) {
	fs := New()
	f, err := fs.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("world")); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err := fs.ReadFile("a")
	if err != nil || string(got) != "hello world" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	r, err := fs.Open("a")
	if err != nil {
		t.Fatal(err)
	}
	all, err := io.ReadAll(r)
	if err != nil || string(all) != "hello world" {
		t.Fatalf("io.ReadAll = %q, %v", all, err)
	}
}

func TestOpenMissingIsNotExist(t *testing.T) {
	fs := New()
	if _, err := fs.Open("nope"); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("Open(missing) = %v, want ErrNotExist", err)
	}
	if _, err := fs.Size("nope"); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("Size(missing) = %v, want ErrNotExist", err)
	}
	// Removing a missing file matches wal.FS semantics: not an error.
	if err := fs.Remove("nope"); err != nil {
		t.Errorf("Remove(missing) = %v", err)
	}
}

func TestOpenAppendExtends(t *testing.T) {
	fs := New()
	fs.WriteFile("log", []byte("abc"))
	f, err := fs.OpenAppend("log")
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("def"))
	f.Close()
	got, _ := fs.ReadFile("log")
	if string(got) != "abcdef" {
		t.Errorf("append result = %q", got)
	}
}

func TestRenameAndTruncate(t *testing.T) {
	fs := New()
	fs.WriteFile("tmp", []byte("snapshot"))
	if err := fs.Rename("tmp", "final"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadFile("tmp"); err == nil {
		t.Error("old name still present after rename")
	}
	got, _ := fs.ReadFile("final")
	if string(got) != "snapshot" {
		t.Errorf("renamed contents = %q", got)
	}
	if err := fs.Truncate("final", 4); err != nil {
		t.Fatal(err)
	}
	got, _ = fs.ReadFile("final")
	if string(got) != "snap" {
		t.Errorf("truncated contents = %q", got)
	}
	if err := fs.Truncate("final", 100); err == nil {
		t.Error("truncate beyond length accepted")
	}
}

func TestWriteBudgetShortWrite(t *testing.T) {
	fs := New()
	f, _ := fs.Create("log")
	fs.LimitWrites(5)
	n, err := f.Write([]byte("abc"))
	if n != 3 || err != nil {
		t.Fatalf("within budget: n=%d err=%v", n, err)
	}
	n, err = f.Write([]byte("defgh"))
	if n != 2 || !errors.Is(err, ErrInjected) {
		t.Fatalf("straddling budget: n=%d err=%v, want 2 bytes + injected error", n, err)
	}
	n, err = f.Write([]byte("x"))
	if n != 0 || !errors.Is(err, ErrInjected) {
		t.Fatalf("after budget: n=%d err=%v", n, err)
	}
	got, _ := fs.ReadFile("log")
	if string(got) != "abcde" {
		t.Errorf("surviving bytes = %q, want the first 5", got)
	}
}

func TestFailSyncsAfter(t *testing.T) {
	fs := New()
	f, _ := fs.Create("log")
	fs.FailSyncsAfter(2)
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("third sync = %v, want injected error", err)
	}
	if got := fs.SyncCount(); got != 2 {
		t.Errorf("SyncCount = %d, want 2", got)
	}
	fs.ClearFaults()
	if err := f.Sync(); err != nil {
		t.Errorf("sync after ClearFaults = %v", err)
	}
}

func TestCloneIsIndependentCrashImage(t *testing.T) {
	fs := New()
	fs.WriteFile("log", []byte("before"))
	fs.FailSyncsAfter(0)
	img := fs.Clone()

	// The image must not share faults or future writes with the original.
	f, _ := img.Create("other")
	if err := f.Sync(); err != nil {
		t.Errorf("clone inherited sync fault: %v", err)
	}
	fs.WriteFile("log", []byte("after"))
	got, _ := img.ReadFile("log")
	if string(got) != "before" {
		t.Errorf("clone sees writes after the crash point: %q", got)
	}
}

func TestLimitSpaceENOSPC(t *testing.T) {
	fs := New()
	f, _ := fs.Create("log")
	fs.LimitSpace(4)
	if n, err := f.Write([]byte("abcd")); n != 4 || err != nil {
		t.Fatalf("within space budget: n=%d err=%v", n, err)
	}
	n, err := f.Write([]byte("ef"))
	if n != 0 || !errors.Is(err, ErrInjected) || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("past space budget: n=%d err=%v, want ENOSPC wrapping ErrInjected", n, err)
	}
	fs.ClearFaults()
	if n, err := f.Write([]byte("ef")); n != 2 || err != nil {
		t.Fatalf("after ClearFaults: n=%d err=%v", n, err)
	}
	got, _ := fs.ReadFile("log")
	if string(got) != "abcdef" {
		t.Errorf("contents = %q", got)
	}
}

func TestStallSyncsBlocksOnlyCaller(t *testing.T) {
	fs := New()
	f, _ := fs.Create("log")
	fs.StallSyncs(50 * time.Millisecond)
	start := time.Now()
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Errorf("stalled sync returned in %v, want >= 50ms", d)
	}
	// While a sync stalls, writes and crash images must not block behind it.
	fs.StallSyncs(200 * time.Millisecond)
	done := make(chan struct{})
	go func() {
		f.Sync()
		close(done)
	}()
	time.Sleep(10 * time.Millisecond) // let the sync enter its stall
	wstart := time.Now()
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	fs.Clone()
	if d := time.Since(wstart); d > 100*time.Millisecond {
		t.Errorf("write+clone blocked %v behind a stalled sync", d)
	}
	<-done
}

func TestSetOpLatency(t *testing.T) {
	fs := New()
	f, _ := fs.Create("log")
	fs.SetOpLatency(20 * time.Millisecond)
	start := time.Now()
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Errorf("write with latency returned in %v, want >= 20ms", d)
	}
	fs.ClearFaults()
	start = time.Now()
	f.Write([]byte("y"))
	if d := time.Since(start); d > 10*time.Millisecond {
		t.Errorf("write after ClearFaults took %v", d)
	}
}

// TestCrashImageDropsUnsyncedTail pins the power-loss model: bytes written
// after the last successful Sync do not survive into CrashImage, while
// Clone (process kill) keeps them.
func TestCrashImageDropsUnsyncedTail(t *testing.T) {
	fs := New()
	f, _ := fs.Create("log")
	f.Write([]byte("durable"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("+pending"))

	img := fs.CrashImage()
	got, err := img.ReadFile("log")
	if err != nil || string(got) != "durable" {
		t.Errorf("CrashImage contents = %q, %v; want synced prefix only", got, err)
	}
	kept, _ := fs.Clone().ReadFile("log")
	if string(kept) != "durable+pending" {
		t.Errorf("Clone contents = %q; want every written byte", kept)
	}

	// A never-synced file survives as an empty entry.
	g, _ := fs.Create("fresh")
	g.Write([]byte("lost"))
	img2 := fs.CrashImage()
	got2, err := img2.ReadFile("fresh")
	if err != nil || len(got2) != 0 {
		t.Errorf("never-synced file in crash image = %q, %v; want empty", got2, err)
	}
}

// TestCrashImageTracksRenameAndTruncate: the synced length must follow the
// file through Rename (Compact's publish step) and shrink with Truncate
// (Compact's log reset), or crash images of a compacted WAL would resurrect
// stale log bytes.
func TestCrashImageTracksRenameAndTruncate(t *testing.T) {
	fs := New()
	f, _ := fs.Create("snapshot.tmp")
	f.Write([]byte("checkpoint"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("snapshot.tmp", "snapshot.json"); err != nil {
		t.Fatal(err)
	}
	got, err := fs.CrashImage().ReadFile("snapshot.json")
	if err != nil || string(got) != "checkpoint" {
		t.Errorf("renamed synced file in crash image = %q, %v", got, err)
	}

	g, _ := fs.Create("wal.log")
	g.Write([]byte("records"))
	g.Sync()
	if err := fs.Truncate("wal.log", 0); err != nil {
		t.Fatal(err)
	}
	got, err = fs.CrashImage().ReadFile("wal.log")
	if err != nil || len(got) != 0 {
		t.Errorf("truncated log in crash image = %q, %v; want empty", got, err)
	}
}

func TestReadSnapshotAtOpen(t *testing.T) {
	fs := New()
	fs.WriteFile("log", []byte("v1"))
	r, _ := fs.Open("log")
	fs.WriteFile("log", []byte("v2-longer"))
	all, err := io.ReadAll(r)
	if err != nil || string(all) != "v1" {
		t.Errorf("open handle = %q, %v; want point-in-time snapshot \"v1\"", all, err)
	}
}
