package store

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
)

// BenchmarkShardRoute pins the routing hot path: one inline FNV-1a pass,
// zero allocations — it runs inside every Submit before any lock is taken.
func BenchmarkShardRoute(b *testing.B) {
	ids := testProducts(64)
	b.ReportAllocs()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += Route(ids[i&63], 16)
	}
	if sink < 0 {
		b.Fatal("impossible")
	}
}

// BenchmarkSubmitParallel measures concurrent ingest across goroutines
// pinned to distinct products — the workload striped locking exists for.
// With one shard every submission serializes on the same mutex and fsync
// pipeline (here: no WAL, so just the mutex); with more shards the
// goroutines spread across independent locks and the per-op cost drops as
// contention does. Allocations are reported (the copy-on-write
// Series.Insert is exactly presized, one slice per submit plus the rater
// string) but the BENCH_store.json baseline stays ns-only: RunParallel's
// worker bookkeeping allocates inside the measured window, which at CI's
// -benchtime=1x would swamp allocs/op.
func BenchmarkSubmitParallel(b *testing.B) {
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			products := testProducts(64)
			st, err := New(90, products, shards)
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			var workers, raters atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				// Each goroutine submits to its own product, so goroutines
				// land on distinct shards whenever the shard count allows.
				product := products[int(workers.Add(1))%len(products)]
				for pb.Next() {
					n := raters.Add(1)
					rater := fmt.Sprintf("r%d", n)
					if _, err := st.Submit(ctx, product, rater, 3, float64(n%90)); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}
