package store

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/wal"
)

// Options configures the durable variant of the store.
type Options struct {
	// Dir is the WAL base directory (ignored when FS is set).
	Dir string
	// FS overrides the filesystem the WALs write through — used by tests
	// to inject faults (internal/faultfs). Defaults to wal.OSDir(Dir).
	FS wal.FS
	// Shards is the shard count; 0 or 1 keeps the legacy single-stream
	// layout (snapshot + log at the top of the directory, no manifest), so
	// WAL directories written before sharding stay readable byte-for-byte.
	// With more shards the directory gains a manifest and one shard-NNN/
	// subdirectory per shard; an existing legacy directory is migrated in
	// place on first open.
	Shards int
	// SyncEvery, SyncInterval, StallThreshold, ProbeInterval set each
	// shard's independent group-commit policy; see wal.Options.
	SyncEvery      int
	SyncInterval   time.Duration
	StallThreshold time.Duration
	ProbeInterval  time.Duration
	// SnapshotEvery checkpoints a shard and resets its log after this many
	// ratings accepted on that shard. 0 disables automatic snapshots.
	SnapshotEvery int
	// Now substitutes the wall clock, for tests. Defaults to time.Now.
	Now func() time.Time
	// Logf receives operational log lines (snapshot failures, migration
	// notices). Defaults to discarding.
	Logf func(format string, args ...any)
}

// RecoveryReport describes what a durable boot found on disk, merged
// across all shards in shard order.
type RecoveryReport struct {
	// SnapshotRatings and ReplayedRatings count ratings restored from the
	// checkpoints and from the log tails, respectively.
	SnapshotRatings int
	ReplayedRatings int
	// DuplicateRecords counts log records that exactly matched a rating
	// already restored — the benign artifact of a crash between snapshot
	// publication and log reset, deduplicated silently.
	DuplicateRecords int
	// SkippedRecords counts records that failed validation (unknown
	// product, out-of-range value or day, conflicting duplicate) and were
	// dropped; SkipReasons holds the first few, for logs.
	SkippedRecords int
	SkipReasons    []string
	// TruncatedBytes counts torn log-tail bytes discarded by the WALs.
	TruncatedBytes int64
	// MigratedFromLegacy is set when this open converted a legacy
	// single-stream directory to the sharded layout in place.
	MigratedFromLegacy bool
}

// maxSkipReasons bounds the per-boot skip-reason sample in RecoveryReport.
const maxSkipReasons = 16

// merge folds a per-shard report into the boot-wide one, sampling skip
// reasons in shard order up to the cap.
func (r *RecoveryReport) merge(o *RecoveryReport) {
	r.SnapshotRatings += o.SnapshotRatings
	r.ReplayedRatings += o.ReplayedRatings
	r.DuplicateRecords += o.DuplicateRecords
	r.SkippedRecords += o.SkippedRecords
	r.TruncatedBytes += o.TruncatedBytes
	for _, reason := range o.SkipReasons {
		if len(r.SkipReasons) >= maxSkipReasons {
			break
		}
		r.SkipReasons = append(r.SkipReasons, reason)
	}
}

// Open creates a durable sharded store over opts.Dir (or opts.FS),
// recovering existing state before returning. Shards replay their
// snapshots and log tails concurrently — one goroutine per shard — and the
// per-shard RecoveryReports are merged in shard order, so the totals are
// deterministic for a given on-disk state.
//
// Layout compatibility: with Shards<=1 the directory is the legacy
// single-stream layout and stays that way. With Shards>1 a fresh directory
// gets a manifest + shard subdirectories; a legacy directory is migrated
// in place (replay, re-partition, per-shard compact, publish manifest,
// remove legacy files — crash-safe at every step because the manifest is
// published only after every shard snapshot is durable); a sharded
// directory whose manifest disagrees with Shards or the routing hash is
// refused with an error naming both values.
//
//lint:ignore ctxfirst boot-time recovery precedes serving; there is no request context to propagate and a partial replay must not be served
func Open(horizonDays float64, products []string, opts Options) (*Store, *RecoveryReport, error) {
	st, err := New(horizonDays, products, opts.Shards)
	if err != nil {
		return nil, nil, err
	}
	if opts.Logf != nil {
		st.logf = opts.Logf
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	for _, sh := range st.shards {
		sh.now = opts.Now
		sh.snapshotEvery = opts.SnapshotEvery
	}
	fsys := opts.FS
	if fsys == nil {
		if opts.Dir == "" {
			return nil, nil, errors.New("store: WAL dir required")
		}
		fsys, err = wal.OSDir(opts.Dir)
		if err != nil {
			return nil, nil, fmt.Errorf("store: open WAL dir: %w", err)
		}
	}
	n := len(st.shards)
	walOpts := wal.Options{
		SyncEvery:      opts.SyncEvery,
		SyncInterval:   opts.SyncInterval,
		StallThreshold: opts.StallThreshold,
		ProbeInterval:  opts.ProbeInterval,
		Now:            opts.Now,
	}

	m, err := wal.ReadManifest(fsys)
	if err != nil {
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	legacy := wal.HasLegacyState(fsys)
	switch {
	case m != nil:
		if m.Shards != n {
			return nil, nil, fmt.Errorf("store: WAL directory was written with %d shards but the store is configured for %d: reopen with -shards=%d (or migrate by restoring from a checkpoint)", m.Shards, n, m.Shards)
		}
		if m.Hash != wal.RouteHashName {
			return nil, nil, fmt.Errorf("store: WAL manifest routing hash %q does not match this build's %q", m.Hash, wal.RouteHashName)
		}
		if legacy {
			// A migration published its manifest but crashed before removing
			// the legacy files; every shard snapshot is already durable, so
			// just finish the cleanup.
			if err := wal.RemoveLegacyState(fsys); err != nil {
				return nil, nil, fmt.Errorf("store: remove migrated legacy state: %w", err)
			}
		}
	case legacy && n > 1:
		report, err := st.migrateLegacy(fsys, walOpts)
		if err != nil {
			return nil, nil, err
		}
		return st, report, nil
	case n > 1:
		if err := wal.WriteManifest(fsys, wal.Manifest{Version: wal.ManifestVersion, Shards: n, Hash: wal.RouteHashName}); err != nil {
			return nil, nil, fmt.Errorf("store: %w", err)
		}
	}

	fses, err := shardFS(fsys, n, m != nil)
	if err != nil {
		return nil, nil, err
	}
	report, err := st.openShards(fses, walOpts)
	if err != nil {
		return nil, nil, err
	}
	return st, report, nil
}

// shardFS resolves the per-shard filesystems: the base itself for the
// legacy single-stream layout, shard-NNN/ subdirectories otherwise. A
// manifest always implies the subdirectory layout, even with one shard.
func shardFS(fsys wal.FS, n int, manifest bool) ([]wal.FS, error) {
	if n == 1 && !manifest {
		return []wal.FS{fsys}, nil
	}
	out := make([]wal.FS, n)
	for i := range out {
		sub, err := wal.Sub(fsys, wal.ShardDir(i))
		if err != nil {
			return nil, fmt.Errorf("store: open %s: %w", wal.ShardDir(i), err)
		}
		out[i] = sub
	}
	return out, nil
}

// openShards opens and replays every shard WAL concurrently and merges the
// per-shard reports in shard order. On any failure every WAL opened so far
// is closed and the first error (by shard index) is returned.
//
//lint:ignore lockheld runs during Open before the Store is returned to any other goroutine; each goroutine writes only its own replayNanos element
func (st *Store) openShards(fses []wal.FS, walOpts wal.Options) (*RecoveryReport, error) {
	type result struct {
		w   *wal.WAL
		rep RecoveryReport
		err error
	}
	results := make([]result, len(st.shards))
	st.replayNanos = make([]int64, len(st.shards))
	var wg sync.WaitGroup
	for i := range st.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start := walOpts.Now()
			defer func() { st.replayNanos[i] = walOpts.Now().Sub(start).Nanoseconds() }()
			w, rec, err := wal.Open(fses[i], walOpts)
			if err != nil {
				results[i].err = err
				return
			}
			results[i].rep.TruncatedBytes = rec.TruncatedBytes
			st.replayShard(i, rec, &results[i].rep)
			sh := st.shards[i]
			sh.wal = w
			sh.sinceSnapshot = len(rec.Records)
			results[i].w = w
		}(i)
	}
	wg.Wait()
	for i := range results {
		if results[i].err != nil {
			for j := range results {
				if results[j].w != nil {
					results[j].w.Close()
				}
			}
			return nil, fmt.Errorf("store: %w", shardErr(len(st.shards), i, results[i].err))
		}
	}
	report := &RecoveryReport{}
	for i := range results {
		report.merge(&results[i].rep)
	}
	return report, nil
}

// replayShard applies one shard's recovered snapshot and log records into
// its in-memory state, folding outcomes into the shard's report. It runs
// during Open, one goroutine per shard, before the store escapes — each
// shard is touched by exactly its own goroutine, so no locks are taken.
func (st *Store) replayShard(i int, rec *wal.Recovery, report *RecoveryReport) {
	if rec.Snapshot != nil {
		for _, p := range rec.Snapshot.Products {
			for _, r := range p.Ratings {
				st.recoverRating(i, p.ID, r.Rater, r.Value, r.Day, &report.SnapshotRatings, report)
			}
		}
	}
	for _, r := range rec.Records {
		st.recoverRating(i, r.Product, r.Rater, r.Value, r.Day, &report.ReplayedRatings, report)
	}
}

// recoverRating applies one recovered rating to shard i through the same
// validation as Submit, folding the outcome into the recovery report. An
// exact duplicate (same product, rater, value, day) is the expected
// residue of a crash mid-Compact and is dropped silently; anything else
// invalid — including a record whose product routes to a different shard —
// is counted and sampled as a skip.
func (st *Store) recoverRating(i int, product, rater string, value, day float64, applied *int, report *RecoveryReport) {
	err := st.applyRecovered(i, product, rater, value, day)
	switch {
	case err == nil:
		*applied++
	case errors.Is(err, ErrDuplicateRating) && st.hasExactRating(product, rater, value, day):
		report.DuplicateRecords++
	default:
		report.SkippedRecords++
		if len(report.SkipReasons) < maxSkipReasons {
			report.SkipReasons = append(report.SkipReasons,
				fmt.Sprintf("%s/%s value=%v day=%v: %v", product, rater, value, day, err))
		}
	}
}

// applyRecovered validates and applies one rating to shard i's in-memory
// state during recovery — the same rules as the live Submit path, plus a
// routing check: a record found in shard i's log must actually route
// there.
//
//lint:ignore lockheld only called during Open, before the Store is returned to any other goroutine; each shard is touched by exactly one replay goroutine
func (st *Store) applyRecovered(i int, product, rater string, value, day float64) error {
	if isNonFinite(value) || value < dataset.MinValue || value > dataset.MaxValue {
		return fmt.Errorf("%w: value %v", ErrBadRating, value)
	}
	if rater == "" {
		return fmt.Errorf("%w: empty rater", ErrBadRating)
	}
	if isNonFinite(day) {
		return fmt.Errorf("%w: non-finite day %v", ErrBadRating, day)
	}
	sh := st.shards[i]
	if day < 0 || day >= sh.horizon {
		return fmt.Errorf("%w: day %v outside [0,%v)", ErrBadRating, day, sh.horizon)
	}
	l, ok := st.byID[product]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownProduct, product)
	}
	if l.shard != i {
		return fmt.Errorf("store: product %q routes to shard %d but its record was found in shard %d's log", product, l.shard, i)
	}
	if sh.seen[product][rater] {
		return fmt.Errorf("%w: rater %q on %q", ErrDuplicateRating, rater, product)
	}
	sh.seen[product][rater] = true
	p := &sh.data.Products[l.pos]
	p.Ratings = p.Ratings.Insert(dataset.Rating{Day: day, Value: value, Rater: rater})
	p.Version++
	if day < sh.dirtyFrom {
		sh.dirtyFrom = day
	}
	return nil
}

// hasExactRating reports whether rater's recorded rating on product has
// exactly this value and day.
//
//lint:ignore lockheld only called from recoverRating during Open, before the Store is returned to any other goroutine
func (st *Store) hasExactRating(product, rater string, value, day float64) bool {
	l, ok := st.byID[product]
	if !ok {
		return false
	}
	for _, r := range st.shards[l.shard].data.Products[l.pos].Ratings {
		if r.Rater == rater {
			//lint:ignore floateq WAL replay dedup is bit-exact by design: a re-replayed record carries the identical float bits, anything else is a conflicting duplicate
			return r.Value == value && r.Day == day
		}
	}
	return false
}

// migrateLegacy converts a legacy single-stream WAL directory to the
// sharded layout in place: replay the legacy snapshot + log through the
// recovery validation, partition by the routing hash, compact every shard
// into its own subdirectory, durably publish the manifest, and only then
// remove the legacy files. A crash at any point is safe: without a
// manifest the next open redoes the migration from the still-intact legacy
// state (stale shard subdirectories are overwritten by Compact); with a
// manifest the next open serves the shards and merely re-removes leftovers.
//
//lint:ignore lockheld runs during Open before the Store escapes; no concurrent access exists yet
func (st *Store) migrateLegacy(fsys wal.FS, walOpts wal.Options) (*RecoveryReport, error) {
	legacyWAL, rec, err := wal.Open(fsys, wal.Options{Now: walOpts.Now})
	if err != nil {
		return nil, fmt.Errorf("store: read legacy WAL: %w", err)
	}
	if err := legacyWAL.Close(); err != nil {
		return nil, fmt.Errorf("store: close legacy WAL: %w", err)
	}
	report := &RecoveryReport{TruncatedBytes: rec.TruncatedBytes, MigratedFromLegacy: true}
	if rec.Snapshot != nil {
		for _, p := range rec.Snapshot.Products {
			for _, r := range p.Ratings {
				if l, ok := st.byID[p.ID]; ok {
					st.recoverRating(l.shard, p.ID, r.Rater, r.Value, r.Day, &report.SnapshotRatings, report)
				} else {
					st.recoverRating(0, p.ID, r.Rater, r.Value, r.Day, &report.SnapshotRatings, report)
				}
			}
		}
	}
	for _, r := range rec.Records {
		l, ok := st.byID[r.Product]
		shardIdx := 0
		if ok {
			shardIdx = l.shard
		}
		st.recoverRating(shardIdx, r.Product, r.Rater, r.Value, r.Day, &report.ReplayedRatings, report)
	}

	fses, err := shardFS(fsys, len(st.shards), true)
	if err != nil {
		return nil, err
	}
	for i, sh := range st.shards {
		// Whatever a crashed earlier migration left in this subdirectory is
		// superseded: its recovery is discarded and Compact below rewrites
		// the snapshot and resets the log.
		w, _, err := wal.Open(fses[i], walOpts)
		if err != nil {
			return nil, fmt.Errorf("store: open %s during migration: %w", wal.ShardDir(i), err)
		}
		if err := w.Compact(sh.data); err != nil {
			w.Close()
			return nil, fmt.Errorf("store: compact %s during migration: %w", wal.ShardDir(i), err)
		}
		sh.wal = w
		sh.sinceSnapshot = 0
	}
	if err := wal.WriteManifest(fsys, wal.Manifest{Version: wal.ManifestVersion, Shards: len(st.shards), Hash: wal.RouteHashName}); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := wal.RemoveLegacyState(fsys); err != nil {
		return nil, fmt.Errorf("store: remove legacy state after migration: %w", err)
	}
	st.logf("store: migrated legacy WAL directory to %d shards (%d snapshot + %d replayed ratings)",
		len(st.shards), report.SnapshotRatings, report.ReplayedRatings)
	return report, nil
}

// isNonFinite reports NaN or ±Inf.
func isNonFinite(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) }
