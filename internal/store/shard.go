package store

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/obs"
	"repro/internal/wal"
)

// shard owns one product-keyed partition of the rating state: a dataset
// slice holding only this shard's products, the per-product rater sets, the
// dirty watermark, and (when durable) this shard's own WAL stream with an
// independent group-commit pipeline.
//
// Locking: gate orders submissions against checkpoints — a submission holds
// gate.RLock across its whole append+apply critical path, and a checkpoint
// takes gate.Lock to quiesce the shard so Compact can never truncate a log
// record that has not yet been applied to the state it snapshots. mu guards
// the in-memory state and is never held across a WAL fsync or an engine
// evaluation (enforced by the lockheld analyzer); the order is always
// gate before mu.
type shard struct {
	gate sync.RWMutex
	mu   sync.Mutex
	// data holds only this shard's products, in registration order.
	data *dataset.Dataset
	seen map[string]map[string]bool // product → rater → rated?
	// dirtyFrom is the earliest rating day accepted on this shard since the
	// coordinator's last consistent cut (+Inf = clean).
	dirtyFrom     float64
	sinceSnapshot int

	wal           *wal.WAL
	snapshotEvery int
	horizon       float64
	now           func() time.Time

	// submits counts ratings accepted on this shard (nil until the store's
	// EnableMetrics runs; a nil counter discards increments).
	submits *obs.Counter
}

// submit validates, durably logs, and applies one rating whose product
// lives at partition index pos. The returned bool reports that the shard's
// snapshot interval elapsed — the caller runs the checkpoint outside the
// submission's gate.RLock (a checkpoint needs the exclusive gate).
//
// The mutex choreography is the layer's core discipline: the rater slot is
// reserved in seen under mu, mu is released across the WAL fsync (so one
// slow disk stalls only this shard's duplicate checks, not its reads), and
// reacquired to apply. A WAL failure rolls the reservation back — nothing
// observable changed for the caller, matching the single-lock semantics.
func (sh *shard) submit(ctx context.Context, pos int, product, rater string, value, day float64) (wal.Ack, bool, error) {
	sh.gate.RLock()
	defer sh.gate.RUnlock()
	sh.mu.Lock()
	// A request whose deadline expired while queued on the lock is shed
	// before it costs an fsync; nothing has been written for it yet.
	if err := ctx.Err(); err != nil {
		sh.mu.Unlock()
		return wal.AckDurable, false, err
	}
	if err := sh.checkLocked(product, rater, day); err != nil {
		sh.mu.Unlock()
		return wal.AckDurable, false, err
	}
	w := sh.wal
	now := sh.now
	// Reserve the rater slot so a concurrent duplicate submission fails
	// during this one's fsync instead of double-logging.
	sh.seen[product][rater] = true
	sh.mu.Unlock()

	ack := wal.AckDurable
	if w != nil {
		var err error
		ack, err = w.AppendAck(wal.Record{
			Product: product, Rater: rater, Value: value, Day: day,
			ReceivedUnixNano: now().UnixNano(),
		})
		if err != nil {
			sh.mu.Lock()
			delete(sh.seen[product], rater) // roll back: the rating was not accepted
			sh.mu.Unlock()
			return ack, false, fmt.Errorf("%w: %v", ErrUnavailable, err)
		}
	}

	sh.mu.Lock()
	p := &sh.data.Products[pos]
	p.Ratings = p.Ratings.Insert(dataset.Rating{Day: day, Value: value, Rater: rater})
	p.Version++
	sh.submits.Inc()
	if day < sh.dirtyFrom {
		sh.dirtyFrom = day
	}
	sh.sinceSnapshot++
	snap := w != nil && sh.snapshotEvery > 0 && sh.sinceSnapshot >= sh.snapshotEvery
	if snap {
		sh.sinceSnapshot = 0
	}
	sh.mu.Unlock()
	return ack, snap, nil
}

// checkLocked runs the stateful submit validations (day range, duplicate
// rater) without mutating anything. Product existence is the router's job:
// a product reaches a shard only through the store's routing table.
func (sh *shard) checkLocked(product, rater string, day float64) error {
	if day < 0 || day >= sh.horizon {
		return fmt.Errorf("%w: day %v outside [0,%v)", ErrBadRating, day, sh.horizon)
	}
	if sh.seen[product][rater] {
		return fmt.Errorf("%w: rater %q on %q", ErrDuplicateRating, rater, product)
	}
	return nil
}

// checkpoint quiesces the shard (exclusive gate: no submission is between
// its WAL append and its state apply) and compacts its WAL: snapshot the
// partition, reset the log. No-op without a WAL.
func (sh *shard) checkpoint() error {
	sh.gate.Lock()
	defer sh.gate.Unlock()
	sh.mu.Lock()
	w := sh.wal
	data := sh.data
	sh.sinceSnapshot = 0
	sh.mu.Unlock()
	if w == nil {
		return nil
	}
	// Under the exclusive gate no submission mutates data, so Compact may
	// marshal it outside mu (fsync never runs under the state mutex).
	return w.Compact(data)
}

// cutLocked copies the shard's product headers into the combined dataset
// slice (globals[j] is the global index of the shard's j-th product) and
// returns the shard's dirty watermark, optionally resetting it (a recompute
// consumes the dirtiness it observes). Caller holds sh.mu — series backing
// arrays are copy-on-write (Merge always reallocates), so the copied
// headers stay immutable after the lock is released.
func (sh *shard) cutLocked(dst []dataset.Product, globals []int, reset bool) float64 {
	for j, g := range globals {
		dst[g] = sh.data.Products[j]
	}
	mark := sh.dirtyFrom
	if reset {
		sh.dirtyFrom = inf()
	}
	return mark
}
