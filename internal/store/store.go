// Package store is the sharded storage layer under the rating service:
// rating state is partitioned into N product-keyed shards, each with its
// own mutex, dataset partition, rater-dedup map, dirty watermark, and WAL
// stream, so submissions on different products contend only on their own
// shard's lock and fsync pipeline. The coordinator above (internal/server)
// routes writes through Submit and takes consistent multi-shard read
// snapshots through BeginRecompute; with one shard the layout and locking
// degenerate to the original single-stream service.
//
// Routing is a pure function — FNV-1a(product) mod shards — recorded in
// the WAL directory's manifest so a reopen with a different shard count
// fails loudly instead of scattering products across the wrong logs.
package store

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strconv"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/obs"
	"repro/internal/wal"
)

// Errors returned by the storage layer. internal/server aliases these, so
// errors.Is against either package's sentinels works on both sides.
var (
	// ErrUnknownProduct indicates a rating or query for an unregistered
	// product.
	ErrUnknownProduct = errors.New("store: unknown product")
	// ErrBadRating indicates an out-of-range or non-finite value or day.
	ErrBadRating = errors.New("store: bad rating")
	// ErrDuplicateRating indicates a rater rating the same product twice
	// (the one-rating-per-rater-per-object rule of Eq. 7).
	ErrDuplicateRating = errors.New("store: duplicate rating")
	// ErrUnavailable indicates the durable log rejected the write; the
	// rating was NOT accepted and the client should retry after the
	// operator restores storage (HTTP 503).
	ErrUnavailable = errors.New("store: storage unavailable")
)

// FNV-1a 64-bit parameters (inlined so routing allocates nothing).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Route maps a product ID to its shard index under the given shard count:
// FNV-1a 64-bit over the ID's bytes, mod shards. It is a pure function of
// its arguments — the same product always lands on the same shard across
// restarts and processes — and is the hash named by wal.RouteHashName in
// the shard manifest.
//
//lint:hotpath
func Route(product string, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := uint64(fnvOffset64)
	for i := 0; i < len(product); i++ {
		h ^= uint64(product[i])
		h *= fnvPrime64
	}
	return int(h % uint64(shards))
}

// loc addresses one product: its shard and its index within the shard's
// dataset partition.
type loc struct {
	shard int
	pos   int
}

// Store is the sharded rating state. The zero value is not usable;
// construct with New (in-memory) or Open (durable).
type Store struct {
	// mu guards the routing topology (products, byID, globals) — it changes
	// only under Load, which replaces the dataset wholesale. Per-rating
	// state lives in the shards, each behind its own locks; the order is
	// always Store.mu, then shard.gate, then shard.mu.
	mu      sync.RWMutex
	horizon float64
	// products holds the registered product IDs in registration order —
	// the order every combined view presents, regardless of sharding.
	products []string
	byID     map[string]loc
	// globals[s][j] is the global (registration-order) index of shard s's
	// j-th partition product.
	globals [][]int
	shards  []*shard
	logf    func(format string, args ...any)
	// replayNanos holds each shard's boot recovery duration (WAL open +
	// replay), captured by openShards; surfaced by EnableMetrics. Empty for
	// an in-memory store.
	replayNanos []int64
}

// New creates an in-memory (non-durable) sharded store.
func New(horizonDays float64, products []string, shards int) (*Store, error) {
	if horizonDays <= 0 || math.IsInf(horizonDays, 0) || math.IsNaN(horizonDays) {
		return nil, fmt.Errorf("store: horizon %v", horizonDays)
	}
	if len(products) == 0 {
		return nil, errors.New("store: no products")
	}
	if shards < 1 {
		shards = 1
	}
	st := &Store{
		horizon: horizonDays,
		byID:    make(map[string]loc, len(products)),
		globals: make([][]int, shards),
		logf:    func(string, ...any) {},
	}
	for i := 0; i < shards; i++ {
		st.shards = append(st.shards, &shard{
			data:      &dataset.Dataset{HorizonDays: horizonDays},
			seen:      make(map[string]map[string]bool),
			dirtyFrom: 0, // everything dirty: the first read computes the table
			horizon:   horizonDays,
			now:       time.Now,
		})
	}
	for g, id := range products {
		if _, dup := st.byID[id]; dup {
			return nil, fmt.Errorf("store: duplicate product %q", id)
		}
		s := Route(id, shards)
		sh := st.shards[s]
		st.byID[id] = loc{shard: s, pos: len(sh.data.Products)}
		// Version 1, not 0: store products are version-maintained from
		// birth, so the engine's memo plane may key on them immediately.
		sh.data.Products = append(sh.data.Products, dataset.Product{ID: id, Version: 1})
		sh.seen[id] = make(map[string]bool)
		st.globals[s] = append(st.globals[s], g)
		st.products = append(st.products, id)
	}
	return st, nil
}

// SetLogf directs the store's operational log (snapshot failures,
// migration notices). f must be safe to call from any goroutine without
// acquiring locks that are ever held while calling into the store.
func (st *Store) SetLogf(f func(format string, args ...any)) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if f == nil {
		f = func(string, ...any) {}
	}
	st.logf = f
}

// EnableMetrics registers the store's observability with reg and attaches
// per-shard WAL metrics: accepted-submission counts, fsync latency and
// group-commit batch histograms, fsync-breaker gauges, and (on a durable
// store) the boot replay duration each shard spent in recovery. A nil reg
// is a no-op; the recording paths stay lock-free, so there is no ordering
// hazard with in-flight submissions.
func (st *Store) EnableMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	st.mu.RLock()
	defer st.mu.RUnlock()
	for i, sh := range st.shards {
		lbl := obs.L("shard", strconv.Itoa(i))
		sh.mu.Lock()
		sh.submits = reg.Counter("store_submit_total", "Ratings accepted, by shard.", lbl)
		w := sh.wal
		sh.mu.Unlock()
		if w != nil {
			w.SetMetrics(wal.Metrics{
				FsyncSeconds: reg.Histogram("wal_fsync_seconds", "WAL fsync latency in seconds, by shard.", obs.LatencyBuckets, lbl),
				BatchSize:    reg.Histogram("wal_batch_size", "Records made durable per WAL group commit, by shard.", obs.CountBuckets, lbl),
				BreakerOpen:  reg.Gauge("wal_breaker_open", "1 while the shard's fsync-latency breaker is open.", lbl),
			})
		}
		if i < len(st.replayNanos) {
			reg.Gauge("store_replay_seconds", "Boot recovery (WAL open + replay) duration in seconds, by shard.", lbl).
				Set(float64(st.replayNanos[i]) / 1e9)
		}
	}
}

// Shards returns the shard count.
func (st *Store) Shards() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.shards)
}

// ShardOf returns the shard index serving the product, or -1 when the
// product is not registered.
func (st *Store) ShardOf(product string) int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	l, ok := st.byID[product]
	if !ok {
		return -1
	}
	return l.shard
}

// Has reports whether the product is registered.
func (st *Store) Has(product string) bool {
	st.mu.RLock()
	defer st.mu.RUnlock()
	_, ok := st.byID[product]
	return ok
}

// Products returns the registered product IDs in registration order.
func (st *Store) Products() []string {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return append([]string(nil), st.products...)
}

// RatingCount returns the number of ratings recorded for the product.
func (st *Store) RatingCount(product string) (int, error) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	l, ok := st.byID[product]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownProduct, product)
	}
	sh := st.shards[l.shard]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return len(sh.data.Products[l.pos].Ratings), nil
}

// Horizon returns the rating horizon in days.
func (st *Store) Horizon() float64 {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.horizon
}

// Submit validates, durably logs (on a durable store), and applies one
// rating to its product's shard. Cross-shard submissions run fully in
// parallel; same-shard submissions contend only on that shard's lock and
// group commit. The ack qualifies the durability promise exactly as
// wal.AppendAck does.
func (st *Store) Submit(ctx context.Context, product, rater string, value, day float64) (wal.Ack, error) {
	// NaN fails every ordered comparison, so explicit finiteness checks
	// must come first: without them a NaN value or day sails past the
	// range guards and poisons every downstream aggregate.
	if math.IsNaN(value) || math.IsInf(value, 0) {
		return wal.AckDurable, fmt.Errorf("%w: non-finite value %v", ErrBadRating, value)
	}
	if math.IsNaN(day) || math.IsInf(day, 0) {
		return wal.AckDurable, fmt.Errorf("%w: non-finite day %v", ErrBadRating, day)
	}
	if value < dataset.MinValue || value > dataset.MaxValue {
		return wal.AckDurable, fmt.Errorf("%w: value %v", ErrBadRating, value)
	}
	if rater == "" {
		return wal.AckDurable, fmt.Errorf("%w: empty rater", ErrBadRating)
	}
	st.mu.RLock()
	defer st.mu.RUnlock()
	l, ok := st.byID[product]
	if !ok {
		return wal.AckDurable, fmt.Errorf("%w: %q", ErrUnknownProduct, product)
	}
	sh := st.shards[l.shard]
	ack, snap, err := sh.submit(ctx, l.pos, product, rater, value, day)
	if err != nil {
		return ack, err
	}
	if snap {
		// The snapshot interval elapsed: checkpoint outside the submission's
		// gate (checkpoint needs it exclusively). A failure is logged, not
		// returned — the triggering rating is already durable in the log,
		// the snapshot only bounds recovery time.
		if cerr := sh.checkpoint(); cerr != nil {
			st.logf("store: shard %d snapshot failed (will retry in %d ratings): %v", l.shard, sh.snapshotEvery, cerr)
		}
	}
	return ack, nil
}

// RecomputeView is a consistent cut over all shards, taken by
// BeginRecompute: the combined dataset (registration order, copy-on-write
// product headers safe to read lock-free) plus the merged dirty watermark.
type RecomputeView struct {
	// Data is the combined dataset; its Series share backing arrays with
	// shard state but those arrays are never mutated (Merge reallocates).
	Data *dataset.Dataset
	// DirtyFrom is the earliest day any shard accepted since the previous
	// cut (+Inf: nothing changed, the cache is clean).
	DirtyFrom float64
	// marks are the per-shard watermarks consumed by this cut, kept so
	// AbortRecompute can restore them if the recompute never completes.
	marks []float64
}

// Dirty reports whether the view observed any change since the last cut.
func (v *RecomputeView) Dirty() bool { return !math.IsInf(v.DirtyFrom, 1) }

// BeginRecompute takes a consistent multi-shard cut for a recompute: all
// shard mutexes are held simultaneously (ascending index; cheap — only
// product headers are copied) so the combined dataset is a single point in
// time, and every shard's dirty watermark is consumed. If the recompute is
// abandoned, AbortRecompute must restore the watermarks; on success the
// consumed dirtiness is exactly what the new table covers.
func (st *Store) BeginRecompute() *RecomputeView {
	return st.cut(true)
}

// View returns a consistent copy-on-write snapshot of the combined dataset
// without consuming dirty watermarks — the read-only variant of
// BeginRecompute, for checkpoints, audits, and tests.
func (st *Store) View() *dataset.Dataset {
	return st.cut(false).Data
}

func (st *Store) cut(reset bool) *RecomputeView {
	st.mu.RLock()
	defer st.mu.RUnlock()
	v := &RecomputeView{
		Data:      &dataset.Dataset{HorizonDays: st.horizon, Products: make([]dataset.Product, len(st.products))},
		DirtyFrom: math.Inf(1),
		marks:     make([]float64, len(st.shards)),
	}
	for _, sh := range st.shards {
		//lint:ignore lockorder state mutexes are acquired in ascending shard order, the documented instance order for the consistent cut
		sh.mu.Lock()
	}
	for i, sh := range st.shards {
		v.marks[i] = sh.cutLocked(v.Data.Products, st.globals[i], reset)
		if v.marks[i] < v.DirtyFrom {
			v.DirtyFrom = v.marks[i]
		}
	}
	for _, sh := range st.shards {
		sh.mu.Unlock()
	}
	return v
}

// AbortRecompute restores the dirty watermarks a BeginRecompute cut
// consumed: the abandoned recompute produced no table, so the dirtiness it
// observed is still unserved. Submissions that arrived since the cut keep
// their own (possibly earlier) marks — the merge takes the minimum.
func (st *Store) AbortRecompute(v *RecomputeView) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	for i, sh := range st.shards {
		if i >= len(v.marks) {
			break
		}
		sh.mu.Lock()
		if v.marks[i] < sh.dirtyFrom {
			sh.dirtyFrom = v.marks[i]
		}
		sh.mu.Unlock()
	}
}

// Dirty reports whether any shard accepted a rating since the last cut.
func (st *Store) Dirty() bool {
	st.mu.RLock()
	defer st.mu.RUnlock()
	for _, sh := range st.shards {
		sh.mu.Lock()
		dirty := !math.IsInf(sh.dirtyFrom, 1)
		sh.mu.Unlock()
		if dirty {
			return true
		}
	}
	return false
}

// Load replaces all rating state with the given dataset: it is partitioned
// by the routing hash, validated (one rating per rater per product), and —
// on a durable store — checkpointed shard by shard so the load survives a
// crash. The product set and registration order become the dataset's.
//
// Load is atomic in memory (every shard gate is held across the swap) but
// not across shard WALs: if checkpointing shard k fails after shards
// 0..k-1 compacted, memory still holds the old state while some shard
// snapshots already hold the new — the operator retries the Load or
// restores storage before restarting.
func (st *Store) Load(ctx context.Context, d *dataset.Dataset) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return err
	}
	n := len(st.shards)
	clone := d.Clone()
	parts := make([]*dataset.Dataset, n)
	seen := make([]map[string]map[string]bool, n)
	globals := make([][]int, n)
	for i := 0; i < n; i++ {
		parts[i] = &dataset.Dataset{HorizonDays: clone.HorizonDays}
		seen[i] = make(map[string]map[string]bool)
	}
	products := make([]string, 0, len(clone.Products))
	byID := make(map[string]loc, len(clone.Products))
	for g, p := range clone.Products {
		m := make(map[string]bool, len(p.Ratings))
		for _, r := range p.Ratings {
			if m[r.Rater] {
				return fmt.Errorf("%w: rater %q on %q", ErrDuplicateRating, r.Rater, p.ID)
			}
			m[r.Rater] = true
		}
		if _, dup := byID[p.ID]; dup {
			return fmt.Errorf("store: duplicate product %q", p.ID)
		}
		s := Route(p.ID, n)
		byID[p.ID] = loc{shard: s, pos: len(parts[s].Products)}
		// From here on the store owns the product's mutations and maintains
		// its content version; bump past the caller's (possibly zero,
		// i.e. unversioned) value so the loaded series is version-keyed too.
		p.Version++
		parts[s].Products = append(parts[s].Products, p)
		seen[s][p.ID] = m
		globals[s] = append(globals[s], g)
		products = append(products, p.ID)
	}
	// Quiesce every shard (exclusive gates, ascending) so the swap is one
	// point in time for submissions and checkpoints alike.
	for _, sh := range st.shards {
		//lint:ignore lockorder gates are acquired in ascending shard order, the documented instance order for multi-shard holds
		sh.gate.Lock()
	}
	defer func() {
		for _, sh := range st.shards {
			sh.gate.Unlock()
		}
	}()
	for i, sh := range st.shards {
		if sh.wal == nil {
			continue
		}
		// Load is a stop-the-world bulk replacement (boot/admin path, never
		// the serving path): holding the topology lock across the per-shard
		// checkpoints is the point — nothing may observe a half-swapped store.
		//lint:ignore lockheld stop-the-world bulk replace; the topology lock must cover the per-shard checkpoints
		if err := sh.wal.Compact(parts[i]); err != nil {
			return fmt.Errorf("%w: checkpoint loaded dataset: %v", ErrUnavailable, err)
		}
	}
	for i, sh := range st.shards {
		sh.mu.Lock()
		sh.data = parts[i]
		sh.seen = seen[i]
		sh.dirtyFrom = 0 // a wholesale replacement invalidates everything
		sh.sinceSnapshot = 0
		sh.mu.Unlock()
	}
	st.products = products
	st.byID = byID
	st.globals = globals
	return nil
}

// Checkpoint forces a snapshot + log compaction of every shard now. It is
// a no-op on a non-durable store. A ctx already cancelled on entry skips
// the compactions (the logs keep growing until the next trigger).
func (st *Store) Checkpoint(ctx context.Context) error {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if st.shards[0].wal == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	for i, sh := range st.shards {
		if err := sh.checkpoint(); err != nil {
			return fmt.Errorf("%w: %v", ErrUnavailable, shardErr(len(st.shards), i, err))
		}
	}
	return nil
}

// Close flushes and closes every shard WAL (no-op when non-durable). The
// store rejects further durable submissions afterwards.
func (st *Store) Close() error {
	st.mu.RLock()
	defer st.mu.RUnlock()
	var first error
	for i, sh := range st.shards {
		sh.mu.Lock()
		w := sh.wal
		sh.mu.Unlock()
		if w == nil {
			continue
		}
		if err := w.Close(); err != nil && first == nil {
			first = shardErr(len(st.shards), i, err)
		}
	}
	return first
}

// Durable reports whether the store writes a WAL.
func (st *Store) Durable() bool {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.shards[0].wal != nil
}

// WALErr returns the first shard's sticky write/fsync failure, if any —
// the store can no longer accept durable submissions on that shard and the
// process should be restarted. Nil for a non-durable store.
func (st *Store) WALErr() error {
	st.mu.RLock()
	defer st.mu.RUnlock()
	for i, sh := range st.shards {
		sh.mu.Lock()
		w := sh.wal
		sh.mu.Unlock()
		if w == nil {
			return nil
		}
		if err := w.Err(); err != nil {
			return shardErr(len(st.shards), i, err)
		}
	}
	return nil
}

// WALDegraded reports whether any shard's fsync-latency breaker is open
// (submissions on it are acknowledged durability=pending).
func (st *Store) WALDegraded() bool {
	st.mu.RLock()
	defer st.mu.RUnlock()
	for _, sh := range st.shards {
		sh.mu.Lock()
		w := sh.wal
		sh.mu.Unlock()
		if w != nil && w.Degraded() {
			return true
		}
	}
	return false
}

// shardErr qualifies a per-shard error with its shard index when the store
// actually has more than one shard (single-shard errors read exactly like
// the pre-sharding service's).
func shardErr(shards, i int, err error) error {
	if shards == 1 {
		return err
	}
	return fmt.Errorf("shard %d: %w", i, err)
}

func inf() float64 { return math.Inf(1) }
