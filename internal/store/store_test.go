package store

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"strings"
	"testing"

	"repro/internal/faultfs"
	"repro/internal/wal"
)

func testProducts(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("product-%d", i)
	}
	return out
}

// Route must be exactly FNV-1a 64 mod shards: the constant is inlined for
// zero-alloc routing, and this pin keeps it in lockstep with the stdlib
// definition the manifest's hash name ("fnv1a64") promises.
func TestRouteMatchesStdlibFNV(t *testing.T) {
	ids := append(testProducts(32), "", "a", "product-é", strings.Repeat("x", 300))
	for _, shards := range []int{1, 2, 3, 8, 64} {
		for _, id := range ids {
			h := fnv.New64a()
			h.Write([]byte(id))
			want := 0
			if shards > 1 {
				want = int(h.Sum64() % uint64(shards))
			}
			if got := Route(id, shards); got != want {
				t.Fatalf("Route(%q, %d) = %d, want %d", id, shards, got, want)
			}
		}
	}
}

// The same product must land on the same shard across independent store
// instances — routing is a pure function, not per-process state.
func TestRoutingDeterministicAcrossInstances(t *testing.T) {
	products := testProducts(24)
	a, err := New(90, products, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(90, products, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range products {
		if a.ShardOf(p) != b.ShardOf(p) {
			t.Fatalf("product %q: shard %d vs %d across instances", p, a.ShardOf(p), b.ShardOf(p))
		}
		if a.ShardOf(p) != Route(p, 5) {
			t.Fatalf("product %q: ShardOf %d != Route %d", p, a.ShardOf(p), Route(p, 5))
		}
	}
}

// submitN pushes n distinct valid ratings round-robin over the store's
// products, failing the test on any error.
func submitN(t *testing.T, st *Store, n int) {
	t.Helper()
	products := st.Products()
	for i := 0; i < n; i++ {
		p := products[i%len(products)]
		rater := fmt.Sprintf("rater-%d", i)
		if _, err := st.Submit(context.Background(), p, rater, 3, float64(i%90)); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
}

func totalRatings(t *testing.T, st *Store) int {
	t.Helper()
	total := 0
	for _, p := range st.Products() {
		n, err := st.RatingCount(p)
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	return total
}

// A sharded open records the shard count and routing hash in the manifest,
// writes each product's records into its routed shard's subdirectory, and a
// restart finds every rating where routing says it must be.
func TestShardedRestartRoutesDeterministically(t *testing.T) {
	const shards = 4
	fs := faultfs.New()
	products := testProducts(12)
	st, _, err := Open(90, products, Options{FS: fs, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	submitN(t, st, 48)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	m, err := wal.ReadManifest(fs)
	if err != nil {
		t.Fatal(err)
	}
	if m == nil || m.Shards != shards || m.Hash != wal.RouteHashName {
		t.Fatalf("manifest = %+v, want %d shards with hash %q", m, shards, wal.RouteHashName)
	}

	// Every shard subdirectory holds exactly the records of the products
	// that route there.
	for i := 0; i < shards; i++ {
		sub, err := wal.Sub(fs, wal.ShardDir(i))
		if err != nil {
			t.Fatal(err)
		}
		w, rec, err := wal.Open(sub, wal.Options{})
		if err != nil {
			t.Fatalf("open shard %d: %v", i, err)
		}
		for _, r := range rec.Records {
			if Route(r.Product, shards) != i {
				t.Errorf("record for %q found in shard %d, routes to %d", r.Product, i, Route(r.Product, shards))
			}
		}
		w.Close()
	}

	st2, rep, err := Open(90, products, Options{FS: fs, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := rep.SnapshotRatings + rep.ReplayedRatings; got != 48 {
		t.Fatalf("recovered %d ratings, want 48 (report %+v)", got, rep)
	}
	if rep.SkippedRecords != 0 || rep.DuplicateRecords != 0 || rep.MigratedFromLegacy {
		t.Fatalf("unexpected recovery report %+v", rep)
	}
	if got := totalRatings(t, st2); got != 48 {
		t.Fatalf("restart holds %d ratings, want 48", got)
	}
	for _, p := range products {
		if st2.ShardOf(p) != Route(p, shards) {
			t.Fatalf("product %q on shard %d after restart, want %d", p, st2.ShardOf(p), Route(p, shards))
		}
	}
}

// Reopening a sharded directory with a different shard count must fail
// loudly, naming both counts — silently rerouting products across the wrong
// logs would drop every misrouted record on replay.
func TestManifestShardMismatchRejected(t *testing.T) {
	fs := faultfs.New()
	products := testProducts(8)
	st, _, err := Open(90, products, Options{FS: fs, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	submitN(t, st, 16)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	_, _, err = Open(90, products, Options{FS: fs, Shards: 8})
	if err == nil {
		t.Fatal("reopen with mismatched shard count succeeded")
	}
	for _, want := range []string{"4 shards", "configured for 8", "-shards=4"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("mismatch error %q does not mention %q", err, want)
		}
	}

	// The matching count still opens cleanly.
	st2, rep, err := Open(90, products, Options{FS: fs, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := rep.SnapshotRatings + rep.ReplayedRatings; got != 16 {
		t.Fatalf("recovered %d ratings after rejected reopen, want 16", got)
	}
}

// A legacy (pre-sharding) WAL directory opened with Shards>1 is migrated in
// place: every rating survives into its routed shard, the manifest is
// published, the legacy files are removed, and the next open is an ordinary
// sharded boot.
func TestLegacyDirectoryMigration(t *testing.T) {
	fs := faultfs.New()
	products := testProducts(10)
	st, _, err := Open(90, products, Options{FS: fs, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	submitN(t, st, 30)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if m, err := wal.ReadManifest(fs); err != nil || m != nil {
		t.Fatalf("single-shard layout grew a manifest: %+v, %v", m, err)
	}

	st2, rep, err := Open(90, products, Options{FS: fs, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.MigratedFromLegacy {
		t.Fatalf("report %+v: MigratedFromLegacy not set", rep)
	}
	if got := rep.SnapshotRatings + rep.ReplayedRatings; got != 30 {
		t.Fatalf("migration carried %d ratings, want 30", got)
	}
	if got := totalRatings(t, st2); got != 30 {
		t.Fatalf("migrated store holds %d ratings, want 30", got)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}

	if wal.HasLegacyState(fs) {
		t.Fatal("legacy snapshot/log still present after migration")
	}
	if m, err := wal.ReadManifest(fs); err != nil || m == nil || m.Shards != 4 {
		t.Fatalf("post-migration manifest = %+v, %v", m, err)
	}

	st3, rep3, err := Open(90, products, Options{FS: fs, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	if rep3.MigratedFromLegacy {
		t.Fatal("second open after migration migrated again")
	}
	if got := rep3.SnapshotRatings + rep3.ReplayedRatings; got != 30 {
		t.Fatalf("post-migration reopen recovered %d ratings, want 30", got)
	}
}

// A WAL append failure must roll back the rater's duplicate-check
// reservation: the rating was never accepted, so the same rater retrying
// after the operator restores storage must not be told "duplicate".
func TestSubmitWALFailureRollsBackReservation(t *testing.T) {
	fs := faultfs.New()
	products := testProducts(1)
	st, _, err := Open(90, products, Options{FS: fs, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	fs.FailSyncsAfter(0)
	_, err = st.Submit(context.Background(), products[0], "alice", 3, 10)
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("submit under failing fsync = %v, want ErrUnavailable", err)
	}
	st.mu.RLock()
	burned := st.shards[0].seen[products[0]]["alice"]
	st.mu.RUnlock()
	if burned {
		t.Fatal("failed submit left the rater reservation behind")
	}
	if n, _ := st.RatingCount(products[0]); n != 0 {
		t.Fatalf("failed submit applied a rating: count %d", n)
	}
}

// BeginRecompute consumes the dirty watermarks; AbortRecompute restores
// them, merging with any dirtiness submitted since the cut.
func TestAbortRecomputeRestoresWatermark(t *testing.T) {
	st, err := New(90, testProducts(6), 3)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Drain the initial everything-dirty mark.
	if v := st.BeginRecompute(); !v.Dirty() || v.DirtyFrom != 0 {
		t.Fatalf("initial cut = %+v, want dirty from 0", v)
	}
	if st.Dirty() {
		t.Fatal("store dirty after consuming the initial cut")
	}

	if _, err := st.Submit(ctx, "product-0", "r1", 3, 42); err != nil {
		t.Fatal(err)
	}
	v := st.BeginRecompute()
	if !v.Dirty() || v.DirtyFrom != 42 {
		t.Fatalf("cut after day-42 submit = %+v, want dirty from 42", v)
	}
	if st.Dirty() {
		t.Fatal("store dirty after cut consumed the watermark")
	}

	// A submission lands between the cut and the abort: the merge must keep
	// the earlier of the two marks.
	if _, err := st.Submit(ctx, "product-0", "r2", 3, 50); err != nil {
		t.Fatal(err)
	}
	st.AbortRecompute(v)
	v2 := st.BeginRecompute()
	if v2.DirtyFrom != 42 {
		t.Fatalf("post-abort cut dirty from %v, want 42 (restored mark)", v2.DirtyFrom)
	}
}

// A record planted in the wrong shard's log (corruption, manual tampering)
// is refused on replay with a routing skip, never silently applied.
func TestMisroutedRecordSkippedOnRecovery(t *testing.T) {
	const shards = 4
	fs := faultfs.New()
	products := testProducts(8)
	st, _, err := Open(90, products, Options{FS: fs, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	victim := products[0]
	wrong := (Route(victim, shards) + 1) % shards
	sub, err := wal.Sub(fs, wal.ShardDir(wrong))
	if err != nil {
		t.Fatal(err)
	}
	w, _, err := wal.Open(sub, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(wal.Record{Product: victim, Rater: "mallory", Value: 1, Day: 5}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	st2, rep, err := Open(90, products, Options{FS: fs, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if rep.SkippedRecords != 1 {
		t.Fatalf("report %+v, want exactly the misrouted record skipped", rep)
	}
	found := false
	for _, reason := range rep.SkipReasons {
		if strings.Contains(reason, "routes to shard") {
			found = true
		}
	}
	if !found {
		t.Fatalf("skip reasons %q do not name the routing violation", rep.SkipReasons)
	}
	if n, _ := st2.RatingCount(victim); n != 0 {
		t.Fatalf("misrouted record was applied: count %d", n)
	}
}

// Checkpoint compacts every shard: a reopen restores everything from
// snapshots with empty log tails.
func TestCheckpointCompactsAllShards(t *testing.T) {
	fs := faultfs.New()
	products := testProducts(9)
	st, _, err := Open(90, products, Options{FS: fs, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	submitN(t, st, 27)
	if err := st.Checkpoint(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, rep, err := Open(90, products, Options{FS: fs, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if rep.SnapshotRatings != 27 || rep.ReplayedRatings != 0 {
		t.Fatalf("post-checkpoint recovery %+v, want 27 snapshot / 0 replayed", rep)
	}
}

// View returns the combined dataset in registration order regardless of the
// shard count, and the product headers stay stable after more submissions
// (copy-on-write series).
func TestViewRegistrationOrder(t *testing.T) {
	products := testProducts(13)
	st, err := New(90, products, 5)
	if err != nil {
		t.Fatal(err)
	}
	submitN(t, st, 26)
	v := st.View()
	if len(v.Products) != len(products) {
		t.Fatalf("view has %d products, want %d", len(v.Products), len(products))
	}
	for i, p := range v.Products {
		if p.ID != products[i] {
			t.Fatalf("view product %d = %q, want %q (registration order)", i, p.ID, products[i])
		}
	}
	before := len(v.Products[0].Ratings)
	if _, err := st.Submit(context.Background(), products[0], "late-rater", 3, 1); err != nil {
		t.Fatal(err)
	}
	if got := len(v.Products[0].Ratings); got != before {
		t.Fatalf("earlier view grew from %d to %d ratings: snapshot is not copy-on-write", before, got)
	}
	if math.IsInf(st.BeginRecompute().DirtyFrom, 1) {
		t.Fatal("View consumed the dirty watermark")
	}
}
