package repro

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/agg"
	"repro/internal/armodel"
	"repro/internal/challenge"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/detect"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/mp"
	"repro/internal/stats"
)

// The figure benchmarks run the same harnesses as cmd/benchfig at a reduced
// scale (the full 251-submission lab takes ~40 s; a benchmark iteration
// should not). benchLab is built once and shared — the per-figure work
// (scoring, searching, reordering) is what each benchmark measures.
var (
	benchOnce sync.Once
	benchLab  *experiments.Lab
	benchErr  error
)

func benchOptions() experiments.Options {
	cfg := challenge.DefaultConfig()
	cfg.Fair.Products = 5
	cfg.Fair.HorizonDays = 120
	return experiments.Options{Seed: 7, Submissions: 30, Challenge: cfg}
}

func lab(b *testing.B) *experiments.Lab {
	b.Helper()
	benchOnce.Do(func() {
		benchLab, benchErr = experiments.NewLab(benchOptions())
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchLab
}

// freshLab builds an uncached lab so a benchmark measures the full scoring
// pass rather than a cache hit.
func freshLab(b *testing.B) *experiments.Lab {
	b.Helper()
	l, err := experiments.NewLab(benchOptions())
	if err != nil {
		b.Fatal(err)
	}
	return l
}

// BenchmarkFig2VarianceBiasP regenerates Figure 2: the variance–bias
// scatter of the whole population scored under the P-scheme.
func BenchmarkFig2VarianceBiasP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		l := freshLab(b)
		if _, err := l.Fig2(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3VarianceBiasSA regenerates Figure 3 (SA-scheme scoring).
func BenchmarkFig3VarianceBiasSA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		l := freshLab(b)
		if _, err := l.Fig3(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4VarianceBiasBF regenerates Figure 4 (BF-scheme scoring).
func BenchmarkFig4VarianceBiasBF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		l := freshLab(b)
		if _, err := l.Fig4(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5RegionSearch regenerates Figure 5: Procedure 2's
// optimum-region search against the P-scheme (reduced trial count).
func BenchmarkFig5RegionSearch(b *testing.B) {
	l := lab(b)
	cfg := core.DefaultSearchConfig()
	cfg.Trials = 2
	cfg.MaxRounds = 3
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.RegionSearch("P", cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6ArrivalInterval regenerates Figure 6: the MP-vs-interval
// time-domain analysis (P-scheme scores are cached in the shared lab, so
// this measures the analysis itself plus one scoring pass on first run).
func BenchmarkFig6ArrivalInterval(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		if _, err := l.Fig6(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7Correlation regenerates Figure 7: reordering the top
// submissions' values (random and Procedure 3) and rescoring.
func BenchmarkFig7Correlation(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Correlation("P", 3, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8GeneratorHeadline regenerates the scheme-comparison
// headline: max MP under SA, BF and P across the population.
func BenchmarkFig8GeneratorHeadline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		l := freshLab(b)
		if _, err := l.Fig8(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Ablation benches (design choices called out in DESIGN.md) ----

func benchDataset(b *testing.B) (*dataset.Dataset, *dataset.Dataset) {
	b.Helper()
	cfg := dataset.DefaultFairConfig()
	cfg.Products = 3
	cfg.HorizonDays = 120
	fair, err := dataset.GenerateFair(stats.NewRNG(3), cfg)
	if err != nil {
		b.Fatal(err)
	}
	gen := core.NewGenerator(4, core.DefaultRaters(50))
	prod, err := fair.Product("tv1")
	if err != nil {
		b.Fatal(err)
	}
	atk, err := gen.GenerateProduct(core.Profile{
		Bias: -2.5, StdDev: 0.8, Count: 50, StartDay: 40,
		DurationDays: 30, Correlation: core.Independent, Quantize: true,
	}, prod.Ratings)
	if err != nil {
		b.Fatal(err)
	}
	attacked := fair.Clone()
	if err := attacked.InjectUnfair("tv1", atk); err != nil {
		b.Fatal(err)
	}
	return fair, attacked
}

// BenchmarkAblationPScheme measures the full P-scheme pipeline (detectors +
// trust epochs + Eq. 7 aggregation) on an attacked dataset.
func BenchmarkAblationPScheme(b *testing.B) {
	_, attacked := benchDataset(b)
	p := agg.NewPScheme()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Aggregates(attacked)
	}
}

// BenchmarkAblationBFScheme measures the BF majority-filter pipeline.
func BenchmarkAblationBFScheme(b *testing.B) {
	_, attacked := benchDataset(b)
	bf := agg.NewBFScheme()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bf.Aggregates(attacked)
	}
}

// BenchmarkAblationSAScheme measures plain averaging (the no-defense
// floor every other scheme's cost is compared against).
func BenchmarkAblationSAScheme(b *testing.B) {
	_, attacked := benchDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg.SAScheme{}.Aggregates(attacked)
	}
}

// BenchmarkAblationMPMetric measures the Manipulation Power computation.
func BenchmarkAblationMPMetric(b *testing.B) {
	fair, attacked := benchDataset(b)
	base := agg.SAScheme{}.Aggregates(fair)
	atk := agg.SAScheme{}.Aggregates(attacked)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mp.Compute(base, atk)
	}
}

// Per-detector ablations: what each stage of the Figure 1 stack costs.

func benchSeries(b *testing.B) dataset.Series {
	b.Helper()
	_, attacked := benchDataset(b)
	prod, err := attacked.Product("tv1")
	if err != nil {
		b.Fatal(err)
	}
	return prod.Ratings
}

// BenchmarkDetectorMC measures the mean-change detector alone.
func BenchmarkDetectorMC(b *testing.B) {
	s := benchSeries(b)
	cfg := detect.DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		detect.MeanChange(s, cfg, nil)
	}
}

// BenchmarkDetectorARC measures the H-ARC/L-ARC pair.
func BenchmarkDetectorARC(b *testing.B) {
	s := benchSeries(b)
	cfg := detect.DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		detect.ArrivalRateChange(s, 120, detect.HighBand, cfg)
		detect.ArrivalRateChange(s, 120, detect.LowBand, cfg)
	}
}

// BenchmarkDetectorHC measures the histogram-change detector (single-linkage
// clustering per window).
func BenchmarkDetectorHC(b *testing.B) {
	s := benchSeries(b)
	cfg := detect.DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		detect.HistogramChange(s, cfg)
	}
}

// BenchmarkDetectorME measures the AR-model-error detector (covariance
// method fit per window).
func BenchmarkDetectorME(b *testing.B) {
	s := benchSeries(b)
	cfg := detect.DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		detect.ModelError(s, cfg)
	}
}

// BenchmarkDetectorFusion measures the full Analyze stack (all four
// detectors plus the two-path fusion).
func BenchmarkDetectorFusion(b *testing.B) {
	s := benchSeries(b)
	cfg := detect.DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		detect.Analyze(s, 120, cfg, nil)
	}
}

// BenchmarkDetectorFusionWarm measures Analyze with a caller-owned warm
// scratch — the shape the engine's per-product fan-out runs in, where the
// window buffers are reused across every product in a worker's batch.
func BenchmarkDetectorFusionWarm(b *testing.B) {
	s := benchSeries(b)
	cfg := detect.DefaultConfig()
	sc := detect.NewScratch()
	detect.AnalyzeWith(s, 120, cfg, nil, sc) // warm the buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		detect.AnalyzeWith(s, 120, cfg, nil, sc)
	}
}

// BenchmarkGeneratorAttack measures generating one 50-rating attack
// (value set + time set + mapper + rater assignment).
func BenchmarkGeneratorAttack(b *testing.B) {
	fair, _ := benchDataset(b)
	prod, err := fair.Product("tv1")
	if err != nil {
		b.Fatal(err)
	}
	profile := core.Profile{
		Bias: -2.3, StdDev: 1.5, Count: 50, StartDay: 40,
		DurationDays: 30, Correlation: core.HeuristicAnti, Quantize: true,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen := core.NewGenerator(uint64(i), core.DefaultRaters(50))
		if _, err := gen.GenerateProduct(profile, prod.Ratings); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFairDataGeneration measures synthesizing the challenge's fair
// dataset.
func BenchmarkFairDataGeneration(b *testing.B) {
	cfg := dataset.DefaultFairConfig()
	cfg.Products = 5
	cfg.HorizonDays = 120
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dataset.GenerateFair(stats.NewRNG(uint64(i)), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPSchemeFilterOnly measures the P-scheme with trust
// weighting disabled (rating filter alone).
func BenchmarkAblationPSchemeFilterOnly(b *testing.B) {
	_, attacked := benchDataset(b)
	p := agg.NewPScheme()
	p.DisableTrustWeighting = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Aggregates(attacked)
	}
}

// BenchmarkAblationPSchemeTrustOnly measures the P-scheme with the rating
// filter disabled (Eq. 7 trust weighting alone).
func BenchmarkAblationPSchemeTrustOnly(b *testing.B) {
	_, attacked := benchDataset(b)
	p := agg.NewPScheme()
	p.DisableFilter = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Aggregates(attacked)
	}
}

// ---- Epoch-engine benches (see BENCH_engine.json for recorded baselines) ----

// benchEngineDataset builds a larger workload than benchDataset — more
// products and a longer horizon (10 trust epochs at 300 days) — so the
// engine's epoch structure and per-product parallelism have something to
// bite on.
func benchEngineDataset(b *testing.B, products int, horizon float64) *dataset.Dataset {
	b.Helper()
	cfg := dataset.DefaultFairConfig()
	cfg.Products = products
	cfg.HorizonDays = horizon
	d, err := dataset.GenerateFair(stats.NewRNG(11), cfg)
	if err != nil {
		b.Fatal(err)
	}
	gen := core.NewGenerator(4, core.DefaultRaters(50))
	prod, err := d.Product("tv1")
	if err != nil {
		b.Fatal(err)
	}
	atk, err := gen.GenerateProduct(core.Profile{
		Bias: -2.5, StdDev: 0.8, Count: 50, StartDay: horizon * 0.3,
		DurationDays: 30, Correlation: core.Independent, Quantize: true,
	}, prod.Ratings)
	if err != nil {
		b.Fatal(err)
	}
	if err := d.InjectUnfair("tv1", atk); err != nil {
		b.Fatal(err)
	}
	// Version-maintained products, the way internal/store serves them: the
	// engine's memo plane is live, exactly as in production.
	for i := range d.Products {
		d.Products[i].Version = 1
	}
	return d
}

// BenchmarkEvaluateColdVsWarm contrasts a full from-scratch P-scheme
// evaluation with the incremental paths the server takes after ratings
// arrive: resume from a surviving checkpoint, replay unchanged products
// from the memo plane, and re-analyze only what a submit actually touched.
func BenchmarkEvaluateColdVsWarm(b *testing.B) {
	d := benchEngineDataset(b, 5, 300)
	eng := &engine.Engine{Detect: detect.DefaultConfig(), Workers: 1}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng.Evaluate(context.Background(), d)
		}
	})
	// warm-last-epoch / warm-mid-history: checkpoint-suffix invalidation
	// with unchanged data — since the memo plane this is a pure cache
	// replay (zero detector analyses), the floor a no-op recompute costs.
	b.Run("warm-last-epoch", func(b *testing.B) {
		st := engine.NewState()
		eng.Resume(context.Background(), st, d) // prime checkpoints + memo
		lateDay := d.HorizonDays - 1
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st.Invalidate(lateDay)
			eng.Resume(context.Background(), st, d)
		}
	})
	b.Run("warm-mid-history", func(b *testing.B) {
		st := engine.NewState()
		eng.Resume(context.Background(), st, d)
		midDay := d.HorizonDays / 2 // half the checkpoints must re-cover
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st.Invalidate(midDay)
			eng.Resume(context.Background(), st, d)
		}
	})
	// warm-single-product-touch: the serving-path unit of work — one new
	// rating by a fresh rater lands late in one product's history. The
	// memo replays every untouched product; only the touched product is
	// re-analyzed (once for the dirty epoch, once for the final pass).
	b.Run("warm-single-product-touch", func(b *testing.B) {
		dd := benchEngineDataset(b, 5, 300)
		st := engine.NewState()
		eng.Resume(context.Background(), st, dd)
		day := dd.HorizonDays - 2
		prod, err := dd.Product("tv2")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			prod.Ratings = prod.Ratings.Insert(dataset.Rating{
				Day: day, Value: 4, Rater: fmt.Sprintf("late%d", i),
			})
			prod.Version++
			st.Invalidate(day)
			eng.Resume(context.Background(), st, dd)
		}
	})
}

// BenchmarkEvaluateParallel measures the same cold evaluation with the
// per-product fan-out disabled (1 worker) and at full width.
func BenchmarkEvaluateParallel(b *testing.B) {
	d := benchEngineDataset(b, 8, 300)
	for _, w := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			eng := &engine.Engine{Detect: detect.DefaultConfig(), Workers: w}
			for i := 0; i < b.N; i++ {
				eng.Evaluate(context.Background(), d)
			}
		})
	}
}

// ---- Substrate micro-benchmarks ----

// BenchmarkSingleLinkage measures the HC detector's clustering backend at
// the paper's window size (40 ratings).
func BenchmarkSingleLinkage(b *testing.B) {
	rng := stats.NewRNG(1)
	xs := make([]float64, 40)
	for i := range xs {
		xs[i] = rng.Float64() * 5
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.SingleLinkage(xs, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkARFitMethods compares the three AR estimators at the paper's
// window size (40 ratings, order 4).
func BenchmarkARFitMethods(b *testing.B) {
	rng := stats.NewRNG(2)
	xs := make([]float64, 40)
	for i := range xs {
		xs[i] = 4 + rng.NormFloat64()*0.6
	}
	for _, m := range []armodel.Method{armodel.Covariance, armodel.Autocorrelation, armodel.Burg} {
		b.Run(m.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := armodel.FitMethod(xs, 4, m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBetaCDF measures the incomplete-beta evaluation behind the
// Whitby quantile filter.
func BenchmarkBetaCDF(b *testing.B) {
	dist := stats.Beta{Alpha: 1.8, Beta: 1.2}
	for i := 0; i < b.N; i++ {
		dist.CDF(0.7)
	}
}

// BenchmarkGLRTStatistics measures the two hypothesis-test kernels.
func BenchmarkGLRTStatistics(b *testing.B) {
	rng := stats.NewRNG(3)
	x1 := make([]float64, 50)
	x2 := make([]float64, 50)
	for i := range x1 {
		x1[i] = rng.NormFloat64()
		x2[i] = rng.NormFloat64() + 1
	}
	b.Run("mean-change", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			stats.MeanChangeGLRT(x1, x2, 1)
		}
	})
	b.Run("rate-change", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			stats.RateChangeGLRT(x1, x2)
		}
	})
}
