// Package repro is a full reproduction of "Modeling Attack Behaviors in
// Rating Systems" (Feng, Yang, Sun, Dai — ICDCS Workshops 2008): attack
// behavior models and an unfair-rating generator for online rating systems,
// together with every substrate the paper depends on — a synthetic rating
// challenge, the signal-based reliable rating aggregation system
// (P-scheme), the simple-averaging and beta-function-filtering baselines,
// and the Manipulation Power metric.
//
// The library packages live under internal/:
//
//   - internal/core — the paper's contribution: attack profiles, the
//     value-set / time-set generators, the value–time mapper (Procedure 3)
//     and the Procedure 2 parameter controller.
//   - internal/detect — the four unfair-rating detectors (MC, ARC, HC, ME)
//     and the Figure 1 two-path fusion.
//   - internal/agg — the SA, BF and P aggregation schemes.
//   - internal/trust, internal/mp, internal/dataset, internal/stats,
//     internal/cluster, internal/armodel — supporting subsystems.
//   - internal/challenge, internal/experiments — the rating challenge
//     simulation and the per-figure experiment harnesses.
//
// The benchmarks in bench_test.go regenerate every figure of the paper's
// evaluation section; see EXPERIMENTS.md for measured-vs-paper results and
// README.md for a walkthrough.
package repro
