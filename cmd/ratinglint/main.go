// Command ratinglint runs the repo's invariant-enforcing static analyzers
// (internal/lint) over the given package patterns — a multichecker in the
// spirit of golang.org/x/tools/go/analysis/multichecker, built on the
// standard library only.
//
// Usage:
//
//	ratinglint [-list] [-json] [-audit] [patterns ...]
//
// Patterns default to ./... and are resolved by `go list` from the current
// directory. Exit status is 0 when clean, 1 when findings were reported,
// and 2 on a load or internal error. Each of the analyzers honors
// `//lint:ignore <analyzer> <rationale>` (and detmaprange additionally
// `//lint:orderindependent <rationale>`) on the flagged line or the line
// above; a matching directive without a rationale is itself reported.
//
// -json emits findings as a JSON array of objects with file, line, column,
// analyzer, message, and the suppression directive that would silence the
// finding, for CI annotation tooling. -audit switches from invariant
// checking to suppression hygiene: every //lint: directive with an empty
// rationale, an unknown verb, or that no longer suppresses anything is
// reported, so exceptions cannot silently outlive the code they excused.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonDiagnostic is the machine-readable shape of one finding. Suppression
// holds the exact directive a developer would add (with a rationale) to
// accept the finding as a documented exception.
type jsonDiagnostic struct {
	File        string `json:"file"`
	Line        int    `json:"line"`
	Column      int    `json:"column"`
	Analyzer    string `json:"analyzer"`
	Message     string `json:"message"`
	Suppression string `json:"suppression,omitempty"`
}

// suppressionFor returns the directive that would silence the diagnostic.
// Audit findings are about the directives themselves and cannot be
// suppressed — the fix is editing the directive.
func suppressionFor(d lint.Diagnostic) string {
	if d.Analyzer == "audit" {
		return ""
	}
	return fmt.Sprintf("//lint:ignore %s <rationale>", d.Analyzer)
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("ratinglint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	asJSON := fs.Bool("json", false, "emit findings as JSON for annotation tooling")
	audit := fs.Bool("audit", false, "audit suppression directives instead of running the analyzers")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: ratinglint [-list] [-json] [-audit] [patterns ...]\n\n")
		fmt.Fprintf(stderr, "Runs the repo's invariant analyzers over the packages matched by the\n")
		fmt.Fprintf(stderr, "patterns (default ./...). See DESIGN.md §9 for the enforced invariants.\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var diags []lint.Diagnostic
	var err error
	if *audit {
		diags, err = lint.Audit(".", patterns, analyzers)
	} else {
		diags, err = lint.Run(".", patterns, analyzers)
	}
	if err != nil {
		fmt.Fprintf(stderr, "ratinglint: %v\n", err)
		return 2
	}
	if *asJSON {
		out := make([]jsonDiagnostic, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiagnostic{
				File:        d.Pos.Filename,
				Line:        d.Pos.Line,
				Column:      d.Pos.Column,
				Analyzer:    d.Analyzer,
				Message:     d.Message,
				Suppression: suppressionFor(d),
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "ratinglint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "ratinglint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
