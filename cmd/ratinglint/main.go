// Command ratinglint runs the repo's invariant-enforcing static analyzers
// (internal/lint) over the given package patterns — a multichecker in the
// spirit of golang.org/x/tools/go/analysis/multichecker, built on the
// standard library only.
//
// Usage:
//
//	ratinglint [-list] [patterns ...]
//
// Patterns default to ./... and are resolved by `go list` from the current
// directory. Exit status is 0 when clean, 1 when findings were reported,
// and 2 on a load or internal error. Each of the analyzers honors
// `//lint:ignore <analyzer> <rationale>` (and detmaprange additionally
// `//lint:orderindependent <rationale>`) on the flagged line or the line
// above; a matching directive without a rationale is itself reported.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("ratinglint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: ratinglint [-list] [patterns ...]\n\n")
		fmt.Fprintf(stderr, "Runs the repo's invariant analyzers over the packages matched by the\n")
		fmt.Fprintf(stderr, "patterns (default ./...). See DESIGN.md §9 for the enforced invariants.\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := lint.Run(".", patterns, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "ratinglint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "ratinglint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
