package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
)

// TestRepoIsClean is the enforcement test behind the CI lint job: the
// whole repository must produce zero findings from the invariant analyzer
// suite. A failure here means either a genuine invariant violation was
// introduced or an intentional exception is missing its //lint: annotation
// (with rationale) — both are things to fix in the code, not here.
func TestRepoIsClean(t *testing.T) {
	diags, err := lint.Run("../..", []string{"./..."}, lint.All())
	if err != nil {
		t.Fatalf("lint run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Fatalf("ratinglint found %d finding(s); fix them or annotate with a rationale (see DESIGN.md §9)", len(diags))
	}
}

// TestSuppressionsAreFresh is the enforcement test behind `ratinglint
// -audit`: every //lint: directive in the repo must carry a rationale, use
// a known verb, and still suppress something. A stale directive is an
// exception that outlived the code it excused.
func TestSuppressionsAreFresh(t *testing.T) {
	diags, err := lint.Audit("../..", []string{"./..."}, lint.All())
	if err != nil {
		t.Fatalf("lint audit: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestFixturesAreDirty guards against the suite silently passing because
// the analyzers stopped reporting anything at all: every analyzer's
// testdata fixtures must keep producing findings from that analyzer.
func TestFixturesAreDirty(t *testing.T) {
	fixtures := map[string][]string{
		"ctxfirst":    {"./internal/lint/testdata/ctxfirst/..."},
		"detmaprange": {"./internal/lint/testdata/detmaprange/..."},
		"durataint":   {"./internal/lint/testdata/durataint/..."},
		"floateq":     {"./internal/lint/testdata/floateq"},
		"hotalloc":    {"./internal/lint/testdata/hotalloc/..."},
		"lockheld":    {"./internal/lint/testdata/lockheld/..."},
		"lockorder":   {"./internal/lint/testdata/lockorder/..."},
		"nowall":      {"./internal/lint/testdata/nowall/..."},
		"walerr":      {"./internal/lint/testdata/walerr"},
	}
	for analyzer, patterns := range fixtures {
		diags, err := lint.Run("../..", patterns, lint.All())
		if err != nil {
			t.Fatalf("lint run over %s fixtures: %v", analyzer, err)
		}
		found := false
		for _, d := range diags {
			if d.Analyzer == analyzer {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s fixtures produced no %s findings; the analyzer is broken", analyzer, analyzer)
		}
	}
}

// TestJSONOutput pins the machine-readable finding shape the CI annotation
// step consumes.
func TestJSONOutput(t *testing.T) {
	out, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	if err := os.Chdir("../.."); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(filepath.Join("cmd", "ratinglint")); err != nil {
			t.Fatal(err)
		}
	}()
	code := run([]string{"-json", "./internal/lint/testdata/floateq"}, out, os.Stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (dirty fixture)", code)
	}
	data, err := os.ReadFile(out.Name())
	if err != nil {
		t.Fatal(err)
	}
	var findings []struct {
		File        string `json:"file"`
		Line        int    `json:"line"`
		Column      int    `json:"column"`
		Analyzer    string `json:"analyzer"`
		Message     string `json:"message"`
		Suppression string `json:"suppression"`
	}
	if err := json.Unmarshal(data, &findings); err != nil {
		t.Fatalf("output is not a JSON finding array: %v\n%s", err, data)
	}
	if len(findings) == 0 {
		t.Fatal("no findings in JSON output for a dirty fixture")
	}
	for _, f := range findings {
		if f.File == "" || f.Line == 0 || f.Analyzer == "" || f.Message == "" {
			t.Errorf("incomplete finding: %+v", f)
		}
		if f.Analyzer != "audit" && !strings.HasPrefix(f.Suppression, "//lint:ignore "+f.Analyzer) {
			t.Errorf("finding suppression %q does not name its analyzer %q", f.Suppression, f.Analyzer)
		}
	}
}
