package main

import (
	"testing"

	"repro/internal/lint"
)

// TestRepoIsClean is the enforcement test behind the CI lint job: the
// whole repository must produce zero findings from the invariant analyzer
// suite. A failure here means either a genuine invariant violation was
// introduced or an intentional exception is missing its //lint: annotation
// (with rationale) — both are things to fix in the code, not here.
func TestRepoIsClean(t *testing.T) {
	diags, err := lint.Run("../..", []string{"./..."}, lint.All())
	if err != nil {
		t.Fatalf("lint run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Fatalf("ratinglint found %d finding(s); fix them or annotate with a rationale (see DESIGN.md §9)", len(diags))
	}
}

// TestFixturesAreDirty guards against the suite silently passing because
// the analyzers stopped reporting anything at all: the testdata fixtures
// must keep producing findings.
func TestFixturesAreDirty(t *testing.T) {
	diags, err := lint.Run("../..", []string{
		"./internal/lint/testdata/walerr",
		"./internal/lint/testdata/floateq",
	}, lint.All())
	if err != nil {
		t.Fatalf("lint run: %v", err)
	}
	if len(diags) == 0 {
		t.Fatal("fixture packages produced no findings; the analyzer suite is broken")
	}
}
