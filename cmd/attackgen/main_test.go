package main

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
)

func testProfile() core.Profile {
	return core.Profile{
		Bias: -2.0, StdDev: 0.5, Count: 20,
		StartDay: 40, DurationDays: 20, Quantize: true,
	}
}

func TestRunJSONOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "tv1", testProfile(), "independent", "uniform", 1, 50, "json", false, ""); err != nil {
		t.Fatal(err)
	}
	d, err := dataset.ReadJSON(&buf)
	if err != nil {
		t.Fatalf("output not valid dataset JSON: %v", err)
	}
	prod, err := d.Product("tv1")
	if err != nil {
		t.Fatal(err)
	}
	unfair := prod.Ratings.UnfairOnly()
	if len(unfair) != 20 {
		t.Errorf("unfair ratings = %d, want 20", len(unfair))
	}
}

func TestRunCSVUnfairOnly(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "tv2", testProfile(), "shuffled", "poisson", 2, 50, "csv", true, ""); err != nil {
		t.Fatal(err)
	}
	d, err := dataset.ReadCSV(&buf)
	if err != nil {
		t.Fatalf("output not valid CSV: %v", err)
	}
	if len(d.Products) != 1 || d.Products[0].ID != "tv2" {
		t.Fatalf("products = %v", d.ProductIDs())
	}
	if got := len(d.Products[0].Ratings); got != 20 {
		t.Errorf("ratings = %d, want 20 (unfair only)", got)
	}
}

func TestRunHeuristicCorrelation(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "tv1", testProfile(), "heuristic", "front", 3, 50, "json", true, ""); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("no output")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "tv1", testProfile(), "sideways", "uniform", 1, 50, "json", false, ""); err == nil {
		t.Error("bad correlation accepted")
	}
	if err := run(&buf, "tv1", testProfile(), "independent", "warp", 1, 50, "json", false, ""); err == nil {
		t.Error("bad pattern accepted")
	}
	if err := run(&buf, "tv1", testProfile(), "independent", "uniform", 1, 50, "yaml", false, ""); err == nil {
		t.Error("bad format accepted")
	}
	if err := run(&buf, "tv99", testProfile(), "independent", "uniform", 1, 50, "json", false, ""); err == nil {
		t.Error("unknown product accepted")
	}
	if err := run(&buf, "tv1", testProfile(), "independent", "uniform", 1, 50, "json", false, "/no/such/file.json"); err == nil {
		t.Error("missing input file accepted")
	}
	bad := testProfile()
	bad.Count = 0
	if err := run(&buf, "tv1", bad, "independent", "uniform", 1, 50, "json", false, ""); err == nil {
		t.Error("invalid profile accepted")
	}
}

func TestRunReadsInputDataset(t *testing.T) {
	// Write a dataset, then attack it via -in.
	var first bytes.Buffer
	if err := run(&first, "tv1", testProfile(), "independent", "uniform", 1, 50, "json", false, ""); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := dir + "/data.json"
	if err := writeFile(path, first.Bytes()); err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := run(&second, "tv2", testProfile(), "independent", "uniform", 2, 50, "json", false, path); err != nil {
		t.Fatal(err)
	}
	outStr := second.String()
	d, err := dataset.ReadJSON(&second)
	if err != nil {
		t.Fatal(err)
	}
	// tv1 keeps the first attack, tv2 gains the second.
	p1, _ := d.Product("tv1")
	p2, _ := d.Product("tv2")
	if len(p1.Ratings.UnfairOnly()) != 20 || len(p2.Ratings.UnfairOnly()) != 20 {
		t.Errorf("unfair counts: tv1=%d tv2=%d",
			len(p1.Ratings.UnfairOnly()), len(p2.Ratings.UnfairOnly()))
	}
	if !strings.Contains(outStr, "tv2") {
		t.Error("output missing tv2")
	}
}

func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
