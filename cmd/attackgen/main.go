// Command attackgen is the paper's released tool (Figure 8): it generates
// collaborative unfair-rating data from attack-model parameters — bias,
// variance, arrival rate (count over duration) and correlation mode — and
// writes the attacked dataset (or just the unfair ratings) as JSON or CSV.
//
// Usage:
//
//	attackgen -product tv1 -bias -2.3 -stddev 1.5 -count 50 \
//	          -start 40 -duration 30 -correlation heuristic -format csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/stats"
)

func main() {
	var (
		product     = flag.String("product", "tv1", "target product ID")
		bias        = flag.Float64("bias", -2.3, "unfair-rating bias (mean offset from fair mean)")
		stddev      = flag.Float64("stddev", 1.5, "unfair-rating standard deviation")
		count       = flag.Int("count", 50, "number of unfair ratings")
		start       = flag.Float64("start", 40, "attack start day")
		duration    = flag.Float64("duration", 30, "attack duration in days")
		correlation = flag.String("correlation", "independent", "value-time mapping: independent|shuffled|heuristic")
		pattern     = flag.String("pattern", "uniform", "arrival pattern: uniform|poisson|front")
		seed        = flag.Uint64("seed", 1, "random seed")
		raters      = flag.Int("raters", 50, "biased rater pool size")
		format      = flag.String("format", "json", "output format: json|csv")
		unfairOnly  = flag.Bool("unfair-only", false, "emit only the unfair ratings instead of the merged dataset")
		inPath      = flag.String("in", "", "existing dataset file to attack (JSON; default: synthesize fair data)")
	)
	flag.Parse()
	profile := core.Profile{
		Bias:         *bias,
		StdDev:       *stddev,
		Count:        *count,
		StartDay:     *start,
		DurationDays: *duration,
		Quantize:     true,
	}
	if err := run(os.Stdout, *product, profile, *correlation, *pattern, *seed, *raters, *format, *unfairOnly, *inPath); err != nil {
		fmt.Fprintln(os.Stderr, "attackgen:", err)
		os.Exit(1)
	}
}

func run(out io.Writer, product string, profile core.Profile, correlation, pattern string, seed uint64, raters int, format string, unfairOnly bool, inPath string) error {
	switch correlation {
	case "independent":
		profile.Correlation = core.Independent
	case "shuffled":
		profile.Correlation = core.Shuffled
	case "heuristic":
		profile.Correlation = core.HeuristicAnti
	default:
		return fmt.Errorf("unknown correlation mode %q", correlation)
	}

	d, err := loadOrSynthesize(inPath, seed)
	if err != nil {
		return err
	}
	prod, err := d.Product(product)
	if err != nil {
		return err
	}

	gen := core.NewGenerator(seed, core.DefaultRaters(raters))
	switch pattern {
	case "uniform":
		gen.TimePattern = core.UniformJitter
	case "poisson":
		gen.TimePattern = core.PoissonArrivals
	case "front":
		gen.TimePattern = core.FrontLoaded
	default:
		return fmt.Errorf("unknown arrival pattern %q", pattern)
	}
	unfair, err := gen.GenerateProduct(profile, prod.Ratings)
	if err != nil {
		return err
	}

	output := d
	if unfairOnly {
		output = &dataset.Dataset{
			HorizonDays: d.HorizonDays,
			Products:    []dataset.Product{{ID: product, Ratings: unfair}},
		}
	} else if err := d.InjectUnfair(product, unfair); err != nil {
		return err
	}

	switch format {
	case "json":
		return output.WriteJSON(out)
	case "csv":
		return output.WriteCSV(out)
	default:
		return fmt.Errorf("unknown format %q (want json or csv)", format)
	}
}

func loadOrSynthesize(inPath string, seed uint64) (*dataset.Dataset, error) {
	if inPath == "" {
		return dataset.GenerateFair(stats.NewRNG(seed+1000), dataset.DefaultFairConfig())
	}
	f, err := os.Open(inPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dataset.ReadJSON(f)
}
