package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunLeaderboard(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 8, 1, 3, "SA", "", "", 0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "simulated 8 submissions") {
		t.Error("missing population line")
	}
	if !strings.Contains(out, "leaderboard under the SA-scheme") {
		t.Error("missing SA leaderboard")
	}
	// Top-3 rows requested.
	if !strings.Contains(out, "\n   3 ") {
		t.Errorf("missing rank-3 row:\n%s", out)
	}
	if strings.Contains(out, "\n   4 ") {
		t.Error("leaderboard longer than requested")
	}
}

func TestRunMultipleSchemes(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 5, 2, 2, "SA, BF", "", "", 0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "SA-scheme") || !strings.Contains(out, "BF-scheme") {
		t.Error("missing scheme sections")
	}
}

func TestRunUnknownScheme(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 5, 2, 2, "XX", "", "", 0); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestSchemeByName(t *testing.T) {
	for _, name := range []string{"SA", "BF", "P"} {
		s, err := schemeByName(name, 0)
		if err != nil || s.Name() != name {
			t.Errorf("schemeByName(%s) = %v, %v", name, s, err)
		}
	}
	if _, err := schemeByName("nope", 0); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestRunTopLargerThanPopulation(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 3, 1, 99, "SA", "", "", 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\n   3 ") {
		t.Error("missing final row")
	}
}

func TestRunExportImportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/population.json"
	var buf bytes.Buffer
	if err := run(&buf, 4, 9, 2, "SA", path, "", 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "exported the population") {
		t.Error("missing export confirmation")
	}
	var buf2 bytes.Buffer
	if err := run(&buf2, 0, 0, 2, "SA", "", path, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf2.String(), "imported 4 archived submissions") {
		t.Errorf("missing import line:\n%s", buf2.String())
	}
	// The archived data scores identically under the same scheme.
	lb1 := buf.String()[strings.Index(buf.String(), "leaderboard"):]
	lb2 := buf2.String()[strings.Index(buf2.String(), "leaderboard"):]
	lb1 = strings.Split(lb1, "exported")[0]
	if strings.TrimSpace(lb1) != strings.TrimSpace(lb2) {
		t.Errorf("leaderboards differ:\n%s\nvs\n%s", lb1, lb2)
	}
}

func TestRunImportMissingFile(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 0, 0, 2, "SA", "", "/no/such/file.json", 0); err == nil {
		t.Error("missing import file accepted")
	}
}
