// Command ratingchallenge simulates the paper's Rating Challenge end to
// end: it synthesizes the fair dataset, simulates a population of attack
// submissions, scores every submission under the chosen defense scheme(s),
// and prints the leaderboard.
//
// Usage:
//
//	ratingchallenge                 # 251 submissions, P-scheme leaderboard
//	ratingchallenge -subs 40 -top 5 -schemes SA,BF,P
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/agg"
	"repro/internal/challenge"
	"repro/internal/stats"
)

func main() {
	var (
		subs    = flag.Int("subs", 251, "number of simulated submissions")
		seed    = flag.Uint64("seed", 42, "master random seed")
		top     = flag.Int("top", 10, "leaderboard size")
		schemes = flag.String("schemes", "P", "comma-separated schemes to evaluate (SA, BF, WBF, ENT, CLU, P, P-online)")
		export  = flag.String("export", "", "write the population (with first scheme's scores) to this JSON file")
		imprt   = flag.String("import", "", "score an archived population from this JSON file instead of simulating one")
		workers = flag.Int("workers", 0, "P-scheme per-product analysis workers (0 = GOMAXPROCS, 1 = serial)")
	)
	flag.Parse()
	if err := run(os.Stdout, *subs, *seed, *top, *schemes, *export, *imprt, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "ratingchallenge:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, subs int, seed uint64, top int, schemeList, exportPath, importPath string, workers int) error {
	cfg := challenge.DefaultConfig()
	c, err := challenge.New(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "rating challenge: %d products over %.0f days, %d biased raters\n",
		cfg.Fair.Products, cfg.Fair.HorizonDays, cfg.BiasedRaters)
	fmt.Fprintf(w, "downgrade targets %v, boost targets %v\n", cfg.DowngradeTargets, cfg.BoostTargets)

	var population []challenge.Submission
	if importPath != "" {
		f, err := os.Open(importPath)
		if err != nil {
			return err
		}
		_, population, err = challenge.ReadSubmissions(f)
		f.Close()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "imported %d archived submissions\n", len(population))
	} else {
		population, err = challenge.GeneratePopulation(stats.NewRNG(seed), c, subs)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "simulated %d submissions\n", len(population))
	}

	var firstScored []challenge.Scored
	var firstScheme string
	for _, name := range strings.Split(schemeList, ",") {
		scheme, err := schemeByName(strings.TrimSpace(name), workers)
		if err != nil {
			return err
		}
		scored, err := c.ScoreAll(population, scheme)
		if err != nil {
			return err
		}
		if firstScored == nil {
			firstScored, firstScheme = scored, scheme.Name()
		}
		lb := challenge.Leaderboard(scored)
		n := top
		if n > len(lb) {
			n = len(lb)
		}
		fmt.Fprintf(w, "\n== leaderboard under the %s-scheme ==\n", scheme.Name())
		fmt.Fprintf(w, "%4s %6s %-18s %10s\n", "rank", "sub", "strategy", "MP")
		for i := 0; i < n; i++ {
			sc := lb[i]
			fmt.Fprintf(w, "%4d %6d %-18s %10.4f\n", i+1, sc.Submission.ID, sc.Submission.Strategy, sc.MP.Overall)
		}
	}
	if exportPath != "" {
		f, err := os.Create(exportPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := c.WriteSubmissions(f, population, firstScored, firstScheme); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nexported the population to %s\n", exportPath)
	}
	return nil
}

func schemeByName(name string, workers int) (agg.Scheme, error) {
	switch name {
	case "SA":
		return agg.SAScheme{}, nil
	case "BF":
		return agg.NewBFScheme(), nil
	case "WBF":
		return agg.NewWhitbyScheme(), nil
	case "ENT":
		return agg.NewEntropyScheme(), nil
	case "CLU":
		return agg.NewClusteringScheme(), nil
	case "P":
		p := agg.NewPScheme()
		p.Workers = workers
		return p, nil
	case "P-online":
		return agg.NewOnlinePScheme(), nil
	default:
		return nil, fmt.Errorf("unknown scheme %q (want SA, BF, WBF, ENT, CLU, P or P-online)", name)
	}
}
