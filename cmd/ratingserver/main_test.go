package main

import (
	"context"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
)

func memConfig(scheme, products string, horizon float64, seedHist bool, seed uint64) config {
	return config{scheme: scheme, products: products, horizon: horizon, seedHist: seedHist, seed: seed}
}

func TestBuildServiceSchemes(t *testing.T) {
	for _, name := range []string{"SA", "BF", "P"} {
		svc, scheme, err := buildService(memConfig(name, "a,b", 60, false, 1))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		defer svc.Close()
		if scheme.Name() != name {
			t.Errorf("scheme = %s, want %s", scheme.Name(), name)
		}
		ids := svc.Products()
		if len(ids) != 2 || ids[0] != "a" || ids[1] != "b" {
			t.Errorf("products = %v", ids)
		}
	}
}

func TestBuildServiceTrimsProductIDs(t *testing.T) {
	svc, _, err := buildService(memConfig("SA", " tv1 , tv2 ", 60, false, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ids := svc.Products()
	if ids[0] != "tv1" || ids[1] != "tv2" {
		t.Errorf("products not trimmed: %v", ids)
	}
}

func TestBuildServiceSeedHistory(t *testing.T) {
	svc, _, err := buildService(memConfig("SA", "x,y", 90, true, 7))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	for _, id := range []string{"x", "y"} {
		n, err := svc.RatingCount(id)
		if err != nil || n == 0 {
			t.Errorf("product %s: %d ratings, %v", id, n, err)
		}
	}
}

func TestBuildServiceErrors(t *testing.T) {
	if _, _, err := buildService(memConfig("XX", "a", 60, false, 1)); err == nil {
		t.Error("unknown scheme accepted")
	}
	if _, _, err := buildService(memConfig("SA", "a", -1, false, 1)); err == nil {
		t.Error("bad horizon accepted")
	}
	if _, _, err := buildService(memConfig("SA", "a,a", 60, false, 1)); err == nil {
		t.Error("duplicate products accepted")
	}
}

// TestBuildServiceWALRoundtrip exercises the durable configuration end to
// end: ratings accepted by one instance survive into a second instance
// built over the same -wal-dir, and recovered history suppresses
// -seed-history instead of being overwritten by it.
func TestBuildServiceWALRoundtrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	cfg := memConfig("SA", "a,b", 60, false, 1)
	cfg.walDir = dir
	cfg.syncEvery = 1
	cfg.snapshotEvery = 4

	svc, _, err := buildService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, rater := range []string{"r1", "r2", "r3", "r4", "r5", "r6"} {
		if err := svc.Submit(context.Background(), "a", rater, 4, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}

	cfg.seedHist = true // must be ignored: the WAL already holds history
	svc2, _, err := buildService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	n, err := svc2.RatingCount("a")
	if err != nil || n != 6 {
		t.Fatalf("recovered RatingCount = %d, %v; want 6", n, err)
	}
	if err := svc2.Submit(context.Background(), "a", "r1", 4, 7); err == nil {
		t.Error("duplicate rater accepted after recovery — seen map not rebuilt")
	}
}

// TestBuildHandlerAdmission pins the CLI wiring: -max-inflight/-queue-depth
// produce a limiter that sheds 503 at capacity, -rate-limit produces a
// per-client 429, and health probes bypass both.
func TestBuildHandlerAdmission(t *testing.T) {
	cfg := memConfig("SA", "tv1", 60, false, 1)
	cfg.maxInflight = 1
	cfg.queueDepth = 0
	cfg.rateLimit = 1 // burst 4
	svc, _, err := buildService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	h := buildHandler(svc, cfg)

	get := func(path, addr string) int {
		req := httptest.NewRequest("GET", path, nil)
		req.RemoteAddr = addr
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, req)
		return rw.Code
	}
	// Burst of 4 allowed, fifth rate-limited.
	for i := 0; i < 4; i++ {
		if code := get("/products", "10.1.1.1:99"); code != http.StatusOK {
			t.Fatalf("request %d = %d", i, code)
		}
	}
	if code := get("/products", "10.1.1.1:99"); code != http.StatusTooManyRequests {
		t.Errorf("flooded client = %d, want 429", code)
	}
	// Health probes are exempt even for the flooded client.
	for _, p := range []string{"/healthz", "/readyz"} {
		if code := get(p, "10.1.1.1:99"); code != http.StatusOK {
			t.Errorf("%s = %d, want 200 (exempt)", p, code)
		}
	}
	// With both knobs zero, admission is disabled: the flooded client is
	// served again.
	cfg.maxInflight, cfg.rateLimit = 0, 0
	h = buildHandler(svc, cfg)
	if code := get("/products", "10.1.1.1:99"); code != http.StatusOK {
		t.Errorf("request with admission disabled = %d, want 200", code)
	}
}
