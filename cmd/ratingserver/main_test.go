package main

import (
	"testing"
)

func TestBuildServiceSchemes(t *testing.T) {
	for _, name := range []string{"SA", "BF", "P"} {
		svc, scheme, err := buildService(name, "a,b", 60, false, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if scheme.Name() != name {
			t.Errorf("scheme = %s, want %s", scheme.Name(), name)
		}
		ids := svc.Products()
		if len(ids) != 2 || ids[0] != "a" || ids[1] != "b" {
			t.Errorf("products = %v", ids)
		}
	}
}

func TestBuildServiceTrimsProductIDs(t *testing.T) {
	svc, _, err := buildService("SA", " tv1 , tv2 ", 60, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	ids := svc.Products()
	if ids[0] != "tv1" || ids[1] != "tv2" {
		t.Errorf("products not trimmed: %v", ids)
	}
}

func TestBuildServiceSeedHistory(t *testing.T) {
	svc, _, err := buildService("SA", "x,y", 90, true, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"x", "y"} {
		n, err := svc.RatingCount(id)
		if err != nil || n == 0 {
			t.Errorf("product %s: %d ratings, %v", id, n, err)
		}
	}
}

func TestBuildServiceErrors(t *testing.T) {
	if _, _, err := buildService("XX", "a", 60, false, 1); err == nil {
		t.Error("unknown scheme accepted")
	}
	if _, _, err := buildService("SA", "a", -1, false, 1); err == nil {
		t.Error("bad horizon accepted")
	}
	if _, _, err := buildService("SA", "a,a", 60, false, 1); err == nil {
		t.Error("duplicate products accepted")
	}
}
