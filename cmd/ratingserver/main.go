// Command ratingserver runs the reliable rating aggregation system as an
// HTTP service: clients submit ratings and query per-month aggregates,
// defense reports and rater trust, all computed live under the chosen
// scheme.
//
// Usage:
//
//	ratingserver -addr :8080 -scheme P -products tv1,tv2,tv3 -horizon 150
//	curl -X POST localhost:8080/ratings -d '{"product":"tv1","rater":"alice","value":4.5,"day":3}'
//	curl localhost:8080/products/tv1/report
//
// With -wal-dir the server is durable: every accepted rating is written to
// a checksummed write-ahead log before it is acknowledged, the dataset is
// checkpointed every -snapshot-every ratings, and a restart replays
// snapshot + log so rating history and rater trust survive crashes.
// -sync-every trades durability for throughput via fsync group commit.
//
// State is partitioned into -shards product shards (default GOMAXPROCS),
// each with its own lock stripe and WAL segment: submissions to different
// products commit concurrently, and recovery replays all shards in
// parallel. -shards 1 reproduces the legacy single-stream layout; opening
// a legacy directory with -shards > 1 migrates it in place.
//
// With -seed-history the server starts pre-loaded with synthetic fair
// rating history, which makes the defense meaningful from the first query.
//
// Under the P-scheme, aggregate recomputes run on the epoch-checkpointed
// incremental engine: a submit only re-evaluates the trust epochs from the
// rating's day forward, and each epoch analyzes its products in parallel.
// -workers bounds that parallelism (0 = GOMAXPROCS, 1 = serial); results
// are bit-identical at any width.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/agg"
	"repro/internal/dataset"
	"repro/internal/resilience"
	"repro/internal/server"
	"repro/internal/stats"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		scheme   = flag.String("scheme", "P", "aggregation scheme: SA|BF|P")
		products = flag.String("products", "tv1,tv2,tv3", "comma-separated product IDs")
		horizon  = flag.Float64("horizon", 150, "rating horizon in days")
		seedHist = flag.Bool("seed-history", false, "preload synthetic fair rating history")
		seed     = flag.Uint64("seed", 1, "seed for -seed-history")
		walDir   = flag.String("wal-dir", "", "write-ahead log directory (empty = in-memory, non-durable)")
		syncEv   = flag.Int("sync-every", 1, "fsync the WAL every N accepted ratings (group commit)")
		snapEv   = flag.Int("snapshot-every", 4096, "checkpoint the dataset and compact the WAL every N ratings (0 = never)")
		workers  = flag.Int("workers", 0, "P-scheme per-product analysis workers per recompute (0 = GOMAXPROCS, 1 = serial)")
		shards   = flag.Int("shards", 0, "product shards with independent locks and WAL segments (0 = GOMAXPROCS, 1 = legacy single-shard layout)")

		maxInflight  = flag.Int("max-inflight", 256, "max concurrent requests before queueing (0 = unbounded)")
		queueDepth   = flag.Int("queue-depth", 512, "max requests waiting for an inflight slot before shedding 503")
		rateLimit    = flag.Float64("rate-limit", 0, "per-client sustained requests/second, 4x burst (0 = unlimited)")
		breakerMS    = flag.Int("fsync-breaker-ms", 250, "fsync latency that trips the WAL breaker into pending-durability acks (0 = never)")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "max time to drain in-flight requests on shutdown")
	)
	flag.Parse()
	if err := run(config{
		addr: *addr, scheme: *scheme, products: *products, horizon: *horizon,
		seedHist: *seedHist, seed: *seed,
		walDir: *walDir, syncEvery: *syncEv, snapshotEvery: *snapEv,
		workers: *workers, shards: *shards,
		maxInflight: *maxInflight, queueDepth: *queueDepth, rateLimit: *rateLimit,
		breakerMS: *breakerMS, drainTimeout: *drainTimeout,
	}); err != nil {
		log.Fatal("ratingserver: ", err)
	}
}

type config struct {
	addr     string
	scheme   string
	products string
	horizon  float64
	seedHist bool
	seed     uint64

	walDir        string
	syncEvery     int
	snapshotEvery int

	workers int
	shards  int

	maxInflight  int
	queueDepth   int
	rateLimit    float64
	breakerMS    int
	drainTimeout time.Duration
}

// buildService assembles the rating service from the CLI parameters; split
// from run so tests can exercise it without binding a socket. The caller
// owns the returned service and must Close it (flushing the WAL).
func buildService(cfg config) (*server.Service, agg.Scheme, error) {
	var scheme agg.Scheme
	switch cfg.scheme {
	case "SA":
		scheme = agg.SAScheme{}
	case "BF":
		scheme = agg.NewBFScheme()
	case "P":
		p := agg.NewPScheme()
		p.Workers = cfg.workers
		scheme = p
	default:
		return nil, nil, fmt.Errorf("unknown scheme %q", cfg.scheme)
	}
	ids := strings.Split(cfg.products, ",")
	for i := range ids {
		ids[i] = strings.TrimSpace(ids[i])
	}
	shards := cfg.shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}

	var (
		svc       *server.Service
		recovered int
		err       error
	)
	if cfg.walDir != "" {
		var rep *server.RecoveryReport
		svc, rep, err = server.OpenWAL(scheme, cfg.horizon, ids, server.WALOptions{
			Dir:            cfg.walDir,
			Shards:         shards,
			SyncEvery:      cfg.syncEvery,
			SnapshotEvery:  cfg.snapshotEvery,
			StallThreshold: time.Duration(cfg.breakerMS) * time.Millisecond,
		})
		if err != nil {
			return nil, nil, err
		}
		recovered = rep.SnapshotRatings + rep.ReplayedRatings
		log.Printf("recovered %d ratings from %s across %d shards (%d from snapshot, %d replayed, %d duplicate, %d skipped, %d torn bytes truncated)",
			recovered, cfg.walDir, shards, rep.SnapshotRatings, rep.ReplayedRatings,
			rep.DuplicateRecords, rep.SkippedRecords, rep.TruncatedBytes)
		if rep.MigratedFromLegacy {
			log.Printf("migrated legacy single-stream WAL at %s to the %d-shard layout", cfg.walDir, shards)
		}
		for _, reason := range rep.SkipReasons {
			log.Printf("recovery skipped: %s", reason)
		}
	} else {
		svc, err = server.NewSharded(scheme, cfg.horizon, ids, shards)
		if err != nil {
			return nil, nil, err
		}
	}
	svc.SetLogger(log.Default())

	// Seeding replaces all ratings, so never clobber recovered history.
	if cfg.seedHist && recovered > 0 {
		log.Printf("WAL holds %d ratings; ignoring -seed-history", recovered)
	} else if cfg.seedHist {
		gcfg := dataset.DefaultFairConfig()
		gcfg.Products = len(ids)
		gcfg.HorizonDays = cfg.horizon
		d, err := dataset.GenerateFair(stats.NewRNG(cfg.seed), gcfg)
		if err != nil {
			svc.Close()
			return nil, nil, err
		}
		// GenerateFair names products tv1…tvN; remap onto the requested IDs.
		for i := range d.Products {
			d.Products[i].ID = ids[i]
		}
		if err := svc.Load(context.Background(), d); err != nil {
			svc.Close()
			return nil, nil, err
		}
		log.Printf("seeded synthetic history for %d products", len(ids))
	}
	return svc, scheme, nil
}

// buildHandler wraps the service handler with admission control per the
// CLI parameters. Health probes are exempt: a saturated instance must keep
// answering /healthz and /readyz or the balancer drains exactly the
// instances carrying the load.
func buildHandler(svc *server.Service, cfg config) http.Handler {
	opts := resilience.AdmissionOptions{
		ExemptPaths: map[string]bool{"/healthz": true, "/readyz": true},
	}
	if cfg.maxInflight > 0 {
		opts.Limiter = resilience.NewLimiter(cfg.maxInflight, cfg.queueDepth)
	}
	if cfg.rateLimit > 0 {
		opts.Rate = resilience.NewRateLimiter(cfg.rateLimit, cfg.rateLimit*4)
	}
	if opts.Limiter == nil && opts.Rate == nil {
		return svc.Handler()
	}
	return resilience.Admission(svc.Handler(), opts)
}

func run(cfg config) error {
	svc, scheme, err := buildService(cfg)
	if err != nil {
		return err
	}
	ids := svc.Products()

	drain := cfg.drainTimeout
	if drain <= 0 {
		drain = 10 * time.Second
	}
	httpServer := &http.Server{
		Addr:              cfg.addr,
		Handler:           buildHandler(svc, cfg),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	// Graceful shutdown on SIGINT/SIGTERM: stop accepting, drain in-flight
	// requests up to -drain-timeout, then (below) flush and close the WAL.
	// Requests still running at the deadline have their contexts cancelled
	// by the server teardown, which sheds them through the same deadline
	// paths as a client disconnect.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		done <- httpServer.Shutdown(shutdownCtx)
	}()

	durability := "in-memory, no WAL"
	if cfg.walDir != "" {
		durability = fmt.Sprintf("WAL %s, sync-every %d, snapshot-every %d", cfg.walDir, cfg.syncEvery, cfg.snapshotEvery)
	}
	log.Printf("serving %s-scheme rating aggregation on %s (%d products, %d shards, %.0f-day horizon, %s)",
		scheme.Name(), cfg.addr, len(ids), svc.Shards(), cfg.horizon, durability)
	if err := httpServer.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		svc.Close()
		return err
	}
	shutdownErr := <-done
	// Flush and close the WAL only after in-flight requests drained, so an
	// orderly stop never loses acknowledged ratings.
	if err := svc.Close(); err != nil {
		log.Printf("wal close: %v", err)
		if shutdownErr == nil {
			shutdownErr = err
		}
	}
	log.Printf("shutdown complete")
	return shutdownErr
}
