// Command ratingserver runs the reliable rating aggregation system as an
// HTTP service: clients submit ratings and query per-month aggregates,
// defense reports and rater trust, all computed live under the chosen
// scheme.
//
// Usage:
//
//	ratingserver -addr :8080 -scheme P -products tv1,tv2,tv3 -horizon 150
//	curl -X POST localhost:8080/ratings -d '{"product":"tv1","rater":"alice","value":4.5,"day":3}'
//	curl localhost:8080/products/tv1/report
//
// With -wal-dir the server is durable: every accepted rating is written to
// a checksummed write-ahead log before it is acknowledged, the dataset is
// checkpointed every -snapshot-every ratings, and a restart replays
// snapshot + log so rating history and rater trust survive crashes.
// -sync-every trades durability for throughput via fsync group commit.
//
// State is partitioned into -shards product shards (default GOMAXPROCS),
// each with its own lock stripe and WAL segment: submissions to different
// products commit concurrently, and recovery replays all shards in
// parallel. -shards 1 reproduces the legacy single-stream layout; opening
// a legacy directory with -shards > 1 migrates it in place.
//
// With -seed-history the server starts pre-loaded with synthetic fair
// rating history, which makes the defense meaningful from the first query.
//
// Under the P-scheme, aggregate recomputes run on the epoch-checkpointed
// incremental engine: a submit only re-evaluates the trust epochs from the
// rating's day forward, and each epoch analyzes its products in parallel.
// -workers bounds that parallelism (0 = GOMAXPROCS, 1 = serial); results
// are bit-identical at any width.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/agg"
	"repro/internal/dataset"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/server"
	"repro/internal/stats"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		scheme   = flag.String("scheme", "P", "aggregation scheme: SA|BF|P")
		products = flag.String("products", "tv1,tv2,tv3", "comma-separated product IDs")
		horizon  = flag.Float64("horizon", 150, "rating horizon in days")
		seedHist = flag.Bool("seed-history", false, "preload synthetic fair rating history")
		seed     = flag.Uint64("seed", 1, "seed for -seed-history")
		walDir   = flag.String("wal-dir", "", "write-ahead log directory (empty = in-memory, non-durable)")
		syncEv   = flag.Int("sync-every", 1, "fsync the WAL every N accepted ratings (group commit)")
		snapEv   = flag.Int("snapshot-every", 4096, "checkpoint the dataset and compact the WAL every N ratings (0 = never)")
		workers  = flag.Int("workers", 0, "P-scheme per-product analysis workers per recompute (0 = GOMAXPROCS, 1 = serial)")
		shards   = flag.Int("shards", 0, "product shards with independent locks and WAL segments (0 = GOMAXPROCS, 1 = legacy single-shard layout)")

		maxInflight  = flag.Int("max-inflight", 256, "max concurrent requests before queueing (0 = unbounded)")
		queueDepth   = flag.Int("queue-depth", 512, "max requests waiting for an inflight slot before shedding 503")
		rateLimit    = flag.Float64("rate-limit", 0, "per-client sustained requests/second, 4x burst (0 = unlimited)")
		breakerMS    = flag.Int("fsync-breaker-ms", 250, "fsync latency that trips the WAL breaker into pending-durability acks (0 = never)")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "max time to drain in-flight requests on shutdown")
		debugAddr    = flag.String("debug-addr", "", "optional second listener serving /metrics and /debug/pprof/* (empty = disabled; /metrics is always on the main listener)")
		logLevel     = flag.String("log-level", "info", "minimum log level: debug|info|warn|error")
	)
	flag.Parse()
	lvl, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ratingserver:", err)
		os.Exit(2)
	}
	logger := obs.NewLogger(os.Stderr, lvl)
	if err := run(config{
		addr: *addr, scheme: *scheme, products: *products, horizon: *horizon,
		seedHist: *seedHist, seed: *seed,
		walDir: *walDir, syncEvery: *syncEv, snapshotEvery: *snapEv,
		workers: *workers, shards: *shards,
		maxInflight: *maxInflight, queueDepth: *queueDepth, rateLimit: *rateLimit,
		breakerMS: *breakerMS, drainTimeout: *drainTimeout,
		debugAddr: *debugAddr,
		logger:    logger, obsReg: obs.NewRegistry(),
	}); err != nil {
		logger.Error("ratingserver exiting", "err", err)
		os.Exit(1)
	}
}

type config struct {
	addr     string
	scheme   string
	products string
	horizon  float64
	seedHist bool
	seed     uint64

	walDir        string
	syncEvery     int
	snapshotEvery int

	workers int
	shards  int

	maxInflight  int
	queueDepth   int
	rateLimit    float64
	breakerMS    int
	drainTimeout time.Duration
	debugAddr    string

	// logger and obsReg are the observability plane, injected by main. Both
	// may be nil (tests): a nil registry disables metrics, and log() falls
	// back to a discarding logger.
	logger *obs.Logger
	obsReg *obs.Registry
}

// log returns the config's structured logger, never nil.
func (c config) log() *obs.Logger {
	if c.logger != nil {
		return c.logger
	}
	return obs.NewLogger(io.Discard, obs.LevelError)
}

// buildService assembles the rating service from the CLI parameters; split
// from run so tests can exercise it without binding a socket. The caller
// owns the returned service and must Close it (flushing the WAL).
func buildService(cfg config) (*server.Service, agg.Scheme, error) {
	var scheme agg.Scheme
	switch cfg.scheme {
	case "SA":
		scheme = agg.SAScheme{}
	case "BF":
		scheme = agg.NewBFScheme()
	case "P":
		p := agg.NewPScheme()
		p.Workers = cfg.workers
		scheme = p
	default:
		return nil, nil, fmt.Errorf("unknown scheme %q", cfg.scheme)
	}
	ids := strings.Split(cfg.products, ",")
	for i := range ids {
		ids[i] = strings.TrimSpace(ids[i])
	}
	shards := cfg.shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}

	var (
		svc       *server.Service
		recovered int
		err       error
	)
	if cfg.walDir != "" {
		var rep *server.RecoveryReport
		svc, rep, err = server.OpenWAL(scheme, cfg.horizon, ids, server.WALOptions{
			Dir:            cfg.walDir,
			Shards:         shards,
			SyncEvery:      cfg.syncEvery,
			SnapshotEvery:  cfg.snapshotEvery,
			StallThreshold: time.Duration(cfg.breakerMS) * time.Millisecond,
		})
		if err != nil {
			return nil, nil, err
		}
		recovered = rep.SnapshotRatings + rep.ReplayedRatings
		cfg.log().Info("recovered ratings from WAL",
			"ratings", recovered, "dir", cfg.walDir, "shards", shards,
			"snapshot", rep.SnapshotRatings, "replayed", rep.ReplayedRatings,
			"duplicate", rep.DuplicateRecords, "skipped", rep.SkippedRecords,
			"tornBytes", rep.TruncatedBytes)
		if rep.MigratedFromLegacy {
			cfg.log().Info("migrated legacy single-stream WAL to sharded layout", "dir", cfg.walDir, "shards", shards)
		}
		for _, reason := range rep.SkipReasons {
			cfg.log().Warn("recovery skipped record", "reason", reason)
		}
	} else {
		svc, err = server.NewSharded(scheme, cfg.horizon, ids, shards)
		if err != nil {
			return nil, nil, err
		}
	}
	// The service's operational log (request lines, recompute failures)
	// flows through the structured logger at info level; metrics register
	// before the handler is built so the /metrics route exists.
	svc.SetLogger(cfg.log().Std(obs.LevelInfo))
	svc.EnableMetrics(cfg.obsReg)

	// Seeding replaces all ratings, so never clobber recovered history.
	if cfg.seedHist && recovered > 0 {
		cfg.log().Warn("WAL holds ratings; ignoring -seed-history", "ratings", recovered)
	} else if cfg.seedHist {
		gcfg := dataset.DefaultFairConfig()
		gcfg.Products = len(ids)
		gcfg.HorizonDays = cfg.horizon
		d, err := dataset.GenerateFair(stats.NewRNG(cfg.seed), gcfg)
		if err != nil {
			svc.Close()
			return nil, nil, err
		}
		// GenerateFair names products tv1…tvN; remap onto the requested IDs.
		for i := range d.Products {
			d.Products[i].ID = ids[i]
		}
		if err := svc.Load(context.Background(), d); err != nil {
			svc.Close()
			return nil, nil, err
		}
		cfg.log().Info("seeded synthetic history", "products", len(ids))
	}
	return svc, scheme, nil
}

// buildHandler wraps the service handler with admission control per the
// CLI parameters. Health probes and /metrics are exempt: a saturated
// instance must keep answering /healthz and /readyz (or the balancer
// drains exactly the instances carrying the load) and must stay
// observable — the scrape that explains an overload cannot be a casualty
// of it.
func buildHandler(svc *server.Service, cfg config) http.Handler {
	opts := resilience.AdmissionOptions{
		ExemptPaths: map[string]bool{"/healthz": true, "/readyz": true, "/metrics": true},
	}
	if cfg.maxInflight > 0 {
		opts.Limiter = resilience.NewLimiter(cfg.maxInflight, cfg.queueDepth)
	}
	if cfg.rateLimit > 0 {
		opts.Rate = resilience.NewRateLimiter(cfg.rateLimit, cfg.rateLimit*4)
	}
	if opts.Limiter == nil && opts.Rate == nil {
		return svc.Handler()
	}
	opts.Metrics = resilience.NewAdmissionMetrics(cfg.obsReg, opts.Limiter, opts.Rate)
	return resilience.Admission(svc.Handler(), opts)
}

// buildDebugHandler serves the opt-in -debug-addr listener: the metrics
// registry plus net/http/pprof's profiling endpoints. The pprof handlers
// are registered explicitly on a private mux — importing net/http/pprof
// touches only http.DefaultServeMux, which this binary never serves.
func buildDebugHandler(reg *obs.Registry) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func run(cfg config) error {
	svc, scheme, err := buildService(cfg)
	if err != nil {
		return err
	}
	ids := svc.Products()

	drain := cfg.drainTimeout
	if drain <= 0 {
		drain = 10 * time.Second
	}
	httpServer := &http.Server{
		Addr:              cfg.addr,
		Handler:           buildHandler(svc, cfg),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	// Graceful shutdown on SIGINT/SIGTERM: stop accepting, drain in-flight
	// requests up to -drain-timeout, then (below) flush and close the WAL.
	// Requests still running at the deadline have their contexts cancelled
	// by the server teardown, which sheds them through the same deadline
	// paths as a client disconnect.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		done <- httpServer.Shutdown(shutdownCtx)
	}()

	// The debug listener (pprof + metrics) is a second, private server: it
	// binds loopback in practice and skips admission control entirely, so a
	// stuck or saturated main listener never blocks a profile grab.
	var debugServer *http.Server
	if cfg.debugAddr != "" && cfg.obsReg != nil {
		debugServer = &http.Server{
			Addr:              cfg.debugAddr,
			Handler:           buildDebugHandler(cfg.obsReg),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			cfg.log().Info("debug listener serving /metrics and /debug/pprof/", "addr", cfg.debugAddr)
			if err := debugServer.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				cfg.log().Error("debug listener failed", "addr", cfg.debugAddr, "err", err)
			}
		}()
	}

	durability := "in-memory, no WAL"
	if cfg.walDir != "" {
		durability = fmt.Sprintf("WAL %s, sync-every %d, snapshot-every %d", cfg.walDir, cfg.syncEvery, cfg.snapshotEvery)
	}
	cfg.log().Info("serving rating aggregation",
		"scheme", scheme.Name(), "addr", cfg.addr, "products", len(ids),
		"shards", svc.Shards(), "horizonDays", cfg.horizon, "durability", durability)
	if err := httpServer.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		svc.Close()
		return err
	}
	shutdownErr := <-done
	if debugServer != nil {
		debugServer.Close()
	}
	// Flush and close the WAL only after in-flight requests drained, so an
	// orderly stop never loses acknowledged ratings.
	if err := svc.Close(); err != nil {
		cfg.log().Error("wal close failed", "err", err)
		if shutdownErr == nil {
			shutdownErr = err
		}
	}
	cfg.log().Info("shutdown complete")
	return shutdownErr
}
