// Command ratingserver runs the reliable rating aggregation system as an
// HTTP service: clients submit ratings and query per-month aggregates,
// defense reports and rater trust, all computed live under the chosen
// scheme.
//
// Usage:
//
//	ratingserver -addr :8080 -scheme P -products tv1,tv2,tv3 -horizon 150
//	curl -X POST localhost:8080/ratings -d '{"product":"tv1","rater":"alice","value":4.5,"day":3}'
//	curl localhost:8080/products/tv1/report
//
// With -seed-history the server starts pre-loaded with synthetic fair
// rating history, which makes the defense meaningful from the first query.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/agg"
	"repro/internal/dataset"
	"repro/internal/server"
	"repro/internal/stats"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		scheme   = flag.String("scheme", "P", "aggregation scheme: SA|BF|P")
		products = flag.String("products", "tv1,tv2,tv3", "comma-separated product IDs")
		horizon  = flag.Float64("horizon", 150, "rating horizon in days")
		seedHist = flag.Bool("seed-history", false, "preload synthetic fair rating history")
		seed     = flag.Uint64("seed", 1, "seed for -seed-history")
	)
	flag.Parse()
	if err := run(*addr, *scheme, *products, *horizon, *seedHist, *seed); err != nil {
		log.Fatal("ratingserver: ", err)
	}
}

// buildService assembles the rating service from the CLI parameters; split
// from run so tests can exercise it without binding a socket.
func buildService(schemeName, productList string, horizon float64, seedHist bool, seed uint64) (*server.Service, agg.Scheme, error) {
	var scheme agg.Scheme
	switch schemeName {
	case "SA":
		scheme = agg.SAScheme{}
	case "BF":
		scheme = agg.NewBFScheme()
	case "P":
		scheme = agg.NewPScheme()
	default:
		return nil, nil, fmt.Errorf("unknown scheme %q", schemeName)
	}
	ids := strings.Split(productList, ",")
	for i := range ids {
		ids[i] = strings.TrimSpace(ids[i])
	}
	svc, err := server.New(scheme, horizon, ids)
	if err != nil {
		return nil, nil, err
	}
	if seedHist {
		cfg := dataset.DefaultFairConfig()
		cfg.Products = len(ids)
		cfg.HorizonDays = horizon
		d, err := dataset.GenerateFair(stats.NewRNG(seed), cfg)
		if err != nil {
			return nil, nil, err
		}
		// GenerateFair names products tv1…tvN; remap onto the requested IDs.
		for i := range d.Products {
			d.Products[i].ID = ids[i]
		}
		if err := svc.Load(d); err != nil {
			return nil, nil, err
		}
		log.Printf("seeded synthetic history for %d products", len(ids))
	}
	return svc, scheme, nil
}

func run(addr, schemeName, productList string, horizon float64, seedHist bool, seed uint64) error {
	svc, scheme, err := buildService(schemeName, productList, horizon, seedHist, seed)
	if err != nil {
		return err
	}
	ids := svc.Products()

	httpServer := &http.Server{
		Addr:              addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	// Graceful shutdown on SIGINT/SIGTERM.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		done <- httpServer.Shutdown(shutdownCtx)
	}()

	log.Printf("serving %s-scheme rating aggregation on %s (%d products, %.0f-day horizon)",
		scheme.Name(), addr, len(ids), horizon)
	if err := httpServer.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return <-done
}
