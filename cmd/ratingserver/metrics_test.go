package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestMetricsEndpointCoverage builds the full production configuration —
// WAL-backed store, admission limiter, per-client rate limiting, metrics
// registry — drives one request through each layer, and asserts a single
// /metrics scrape reflects every instrumented subsystem: HTTP, admission,
// WAL, store, and engine. It also pins that /metrics is exempt from
// admission control: a rate-limited client can still be scraped.
func TestMetricsEndpointCoverage(t *testing.T) {
	cfg := memConfig("SA", "tv1,tv2", 60, false, 1)
	cfg.walDir = filepath.Join(t.TempDir(), "wal")
	cfg.syncEvery = 1 // every submit fsyncs, so the WAL histograms populate
	cfg.maxInflight = 4
	cfg.queueDepth = 4
	cfg.rateLimit = 1 // burst 4: the flood below exhausts it in four requests
	cfg.obsReg = obs.NewRegistry()

	svc, _, err := buildService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	h := buildHandler(svc, cfg)

	do := func(method, path, body string) *httptest.ResponseRecorder {
		t.Helper()
		var rd io.Reader
		if body != "" {
			rd = strings.NewReader(body)
		}
		req := httptest.NewRequest(method, path, rd)
		req.RemoteAddr = "10.9.9.9:1234"
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, req)
		return rw
	}

	// One request through each layer: a durable submit (WAL fsync + store
	// shard counter), a scores read (engine evaluation), a products list.
	if rw := do("POST", "/ratings", `{"product":"tv1","rater":"m1","value":4,"day":1}`); rw.Code != http.StatusCreated {
		t.Fatalf("submit = %d: %s", rw.Code, rw.Body.String())
	}
	if rw := do("GET", "/products/tv1/scores", ""); rw.Code != http.StatusOK {
		t.Fatalf("scores = %d", rw.Code)
	}
	// Exhaust the remaining rate-limit burst: the loop ends on the first
	// (and, for the scrape assertions below, only) 429.
	floodCode := 0
	for i := 0; i < 100 && floodCode != http.StatusTooManyRequests; i++ {
		floodCode = do("GET", "/products", "").Code
	}
	if floodCode != http.StatusTooManyRequests {
		t.Fatalf("flooded client = %d, want 429", floodCode)
	}
	rw := do("GET", "/metrics", "")
	if rw.Code != http.StatusOK {
		t.Fatalf("/metrics for flooded client = %d, want 200 (exempt from admission)", rw.Code)
	}

	scrape := rw.Body.String()
	for _, want := range []string{
		// HTTP plane: the submit recorded itself before this scrape.
		`http_requests_total{route="submit",class="2xx"} 1`,
		`http_request_seconds_bucket{route="submit",le="`,
		// Admission plane: the shed above counted one rate-limited rejection.
		`admission_shed_total{reason="rate_limited"} 1`,
		`admission_queue_wait_seconds_count`,
		`admission_admitted_total`,
		`ratelimit_denied_total 1`,
		// WAL plane: syncEvery=1 means the submit fsynced at least once.
		`wal_fsync_seconds_count{shard="`,
		`wal_batch_size_bucket{shard="`,
		`wal_breaker_open{shard="`,
		// Store plane: per-shard submit counters and replay timings.
		`store_submit_total{shard="`,
		`store_replay_seconds{shard="`,
		// Engine plane: the scores read forced an evaluation.
		`engine_eval_seconds_count`,
		`engine_products_analyzed_total`,
		`engine_memo_hits`,
	} {
		if !strings.Contains(scrape, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("scrape:\n%s", scrape)
	}

	// The durable submit landed on exactly one shard: across the per-shard
	// submit counters, the values must sum to 1.
	total := 0
	for _, line := range strings.Split(scrape, "\n") {
		if !strings.HasPrefix(line, `store_submit_total{shard="`) {
			continue
		}
		if strings.HasSuffix(line, "} 1") {
			total++
		} else if !strings.HasSuffix(line, "} 0") {
			t.Errorf("unexpected shard counter value: %q", line)
		}
	}
	if total != 1 {
		t.Errorf("%d shards recorded the single submit, want 1", total)
	}
}
