package main

import (
	"strings"
	"testing"
)

// sampleOutput mixes suffixed (multi-core) and unsuffixed (GOMAXPROCS=1)
// result rows, with and without the -benchmem columns.
const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkDetectorMC-8     	     100	    120000 ns/op	   48000 B/op	      90 allocs/op
BenchmarkDetectorHC-8     	     100	    200000 ns/op	   12345 B/op	      60 allocs/op
BenchmarkDetectorME      	     100	    113309.5 ns/op
BenchmarkEvaluateParallel/workers-1-8         	       5	 151226584 ns/op
BenchmarkEvaluateParallel/workers-8-8         	       5	 155542816 ns/op
PASS
ok  	repro	12.345s
`

// singleCoreOutput is what a GOMAXPROCS=1 run emits: no -N suffix, so the
// sub-benchmark's own -1 must survive lookup untouched.
const singleCoreOutput = `BenchmarkDetectorHC                	       1	     45418 ns/op	    2400 B/op	      10 allocs/op
BenchmarkEvaluateParallel/workers-1                 	       1	  44297175 ns/op
BenchmarkEvaluateParallel/workers-1#01              	       1	  44414657 ns/op
`

func intPtr(v int64) *int64 { return &v }

func parse(t *testing.T, out string) benchResults {
	t.Helper()
	results, err := parseBench(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	return results
}

func TestParseBenchLookup(t *testing.T) {
	results := parse(t, sampleOutput)
	tests := []struct {
		name   string
		ns     float64
		allocs int64
		has    bool
	}{
		{"BenchmarkDetectorMC", 120000, 90, true},
		{"BenchmarkDetectorHC", 200000, 60, true},
		{"BenchmarkDetectorME", 113309.5, 0, false}, // no -benchmem columns, no -N suffix
		{"BenchmarkEvaluateParallel/workers-1", 151226584, 0, false},
		{"BenchmarkEvaluateParallel/workers-8", 155542816, 0, false},
	}
	if len(results.raw) != len(tests) {
		t.Errorf("parsed %d results, want %d: %v", len(results.raw), len(tests), results.raw)
	}
	for _, tt := range tests {
		got, ok := results.lookup(tt.name)
		if !ok {
			t.Errorf("missing %s", tt.name)
			continue
		}
		if got.nsPerOp != tt.ns || got.allocsPerOp != tt.allocs || got.hasAllocs != tt.has {
			t.Errorf("%s = %+v, want ns=%v allocs=%v has=%v", tt.name, got, tt.ns, tt.allocs, tt.has)
		}
	}
}

func TestLookupSingleCoreNamesKeepTrailingDigits(t *testing.T) {
	results := parse(t, singleCoreOutput)
	got, ok := results.lookup("BenchmarkEvaluateParallel/workers-1")
	if !ok || got.nsPerOp != 44297175 {
		t.Errorf("workers-1 lookup = %+v, %v; want the raw unsuffixed row", got, ok)
	}
	if hc, ok := results.lookup("BenchmarkDetectorHC"); !ok || hc.allocsPerOp != 10 {
		t.Errorf("DetectorHC lookup = %+v, %v", hc, ok)
	}
}

func defaultTol() tolerances {
	return tolerances{nsTol: 0.50, allocTol: 0.25, allocSlack: 16}
}

func TestCompareAllocRegressionFails(t *testing.T) {
	base := baselineFile{Benchmarks: map[string]baselineEntry{
		"BenchmarkDetectorMC": {NsPerOp: 120000, AllocsPerOp: intPtr(10)}, // limit 10*1.25+16 = 28 < 90
	}}
	var buf strings.Builder
	if !compare(&buf, "test.json", base, parse(t, sampleOutput), defaultTol()) {
		t.Fatalf("expected failure, got:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "FAIL") || !strings.Contains(buf.String(), "90 allocs/op") {
		t.Errorf("unexpected report:\n%s", buf.String())
	}
}

func TestCompareAllocWithinToleranceOK(t *testing.T) {
	base := baselineFile{Benchmarks: map[string]baselineEntry{
		"BenchmarkDetectorMC": {NsPerOp: 120000, AllocsPerOp: intPtr(80)}, // limit 80*1.25+16 = 116 ≥ 90
	}}
	var buf strings.Builder
	if compare(&buf, "test.json", base, parse(t, sampleOutput), defaultTol()) {
		t.Fatalf("unexpected failure:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "ok") {
		t.Errorf("unexpected report:\n%s", buf.String())
	}
}

func TestCompareNsRegressionOnlyWarns(t *testing.T) {
	base := baselineFile{Benchmarks: map[string]baselineEntry{
		"BenchmarkDetectorHC": {NsPerOp: 1000, AllocsPerOp: intPtr(60)}, // 200000 ns ≫ 1000, allocs exact
	}}
	var buf strings.Builder
	if compare(&buf, "test.json", base, parse(t, sampleOutput), defaultTol()) {
		t.Fatalf("ns/op regression must not fail:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "WARN") {
		t.Errorf("expected WARN:\n%s", buf.String())
	}
}

func TestCompareMissingBenchmarkSkips(t *testing.T) {
	base := baselineFile{Benchmarks: map[string]baselineEntry{
		"BenchmarkEvaluateParallel/workers-GOMAXPROCS": {NsPerOp: 155542816}, // key only matches on 1-core recordings
		"BenchmarkNotRun": {NsPerOp: 1, AllocsPerOp: intPtr(1)},
	}}
	var buf strings.Builder
	if compare(&buf, "test.json", base, parse(t, sampleOutput), defaultTol()) {
		t.Fatalf("missing benchmarks must not fail:\n%s", buf.String())
	}
	if got := strings.Count(buf.String(), "skip"); got != 2 {
		t.Errorf("want 2 skips, got %d:\n%s", got, buf.String())
	}
}

func TestCompareMissingAllocColumnFails(t *testing.T) {
	// Baseline pins allocs but the run lacked -benchmem: fail loudly rather
	// than silently passing the alloc gate.
	base := baselineFile{Benchmarks: map[string]baselineEntry{
		"BenchmarkDetectorME": {NsPerOp: 113310, AllocsPerOp: intPtr(5)},
	}}
	var buf strings.Builder
	if !compare(&buf, "test.json", base, parse(t, sampleOutput), defaultTol()) {
		t.Fatalf("expected failure:\n%s", buf.String())
	}
}

func TestCompareNsOnlyBaselineNeverFails(t *testing.T) {
	// Engine baselines record ns/op only; even a huge slowdown just warns.
	base := baselineFile{Benchmarks: map[string]baselineEntry{
		"BenchmarkEvaluateParallel/workers-1": {NsPerOp: 10},
	}}
	var buf strings.Builder
	if compare(&buf, "test.json", base, parse(t, sampleOutput), defaultTol()) {
		t.Fatalf("ns-only baseline must not fail:\n%s", buf.String())
	}
}
