// Command benchdiff compares `go test -bench` output against recorded
// baseline files (BENCH_detect.json, BENCH_engine.json) and exits nonzero
// when a benchmark regresses beyond tolerance.
//
// Allocation counts are deterministic for the serial detector kernels, so an
// allocs/op regression fails hard. Wall-clock ns/op is noisy on shared CI
// runners, so ns/op regressions only warn — the recorded numbers document
// the expected order of magnitude, not a hard gate.
//
// Usage:
//
//	go test -run=NONE -bench=. -benchtime=1x -benchmem ./... | \
//	    go run ./cmd/benchdiff -baseline BENCH_detect.json -baseline BENCH_engine.json
//
// Baselines whose benchmark is absent from the input are reported as skipped
// (the bench-smoke CI step runs every benchmark once, but a filtered local
// run compares only what it measured). Measured benchmarks without a
// baseline entry are ignored.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// baselineFile mirrors the BENCH_*.json layout.
type baselineFile struct {
	Comment     string                   `json:"comment"`
	Environment map[string]any           `json:"environment"`
	Benchmarks  map[string]baselineEntry `json:"benchmarks"`
	Ratios      map[string]float64       `json:"ratios"`
}

type baselineEntry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp *int64  `json:"allocs_per_op,omitempty"`
}

// measurement is one parsed benchmark result line.
type measurement struct {
	nsPerOp     float64
	allocsPerOp int64
	hasAllocs   bool
}

// benchLine matches one `go test -bench` result row:
//
//	BenchmarkDetectorHC-8   100   546827 ns/op   98304 B/op   1224 allocs/op
//
// The B/op and allocs/op columns appear only under -benchmem.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.]+) ns/op(?:\s+[0-9.]+ B/op)?(?:\s+([0-9]+) allocs/op)?`)

// gomaxprocsSuffix is the `-N` the testing package appends to benchmark
// names when GOMAXPROCS != 1. Sub-benchmark names can themselves end in
// `-<digits>` (workers-1), and a GOMAXPROCS=1 run appends nothing, so the
// suffix cannot be stripped unconditionally: measurements are kept under
// their raw names and the stripped spelling is a fallback index only.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// benchResults holds parsed measurements under their raw benchmark names
// plus a fallback index with the trailing -GOMAXPROCS group removed.
type benchResults struct {
	raw      map[string]measurement
	stripped map[string]measurement
}

// lookup resolves a baseline name: an exact raw match wins (GOMAXPROCS=1
// output, where names carry no suffix and `workers-1` must not lose its
// `-1`); otherwise the stripped index covers suffixed multi-core output.
func (r benchResults) lookup(name string) (measurement, bool) {
	if m, ok := r.raw[name]; ok {
		return m, true
	}
	m, ok := r.stripped[name]
	return m, ok
}

// parseBench extracts benchmark measurements from `go test -bench` output.
func parseBench(r io.Reader) (benchResults, error) {
	results := benchResults{
		raw:      make(map[string]measurement),
		stripped: make(map[string]measurement),
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return results, fmt.Errorf("line %q: %v", sc.Text(), err)
		}
		res := measurement{nsPerOp: ns}
		if m[3] != "" {
			allocs, err := strconv.ParseInt(m[3], 10, 64)
			if err != nil {
				return results, fmt.Errorf("line %q: %v", sc.Text(), err)
			}
			res.allocsPerOp = allocs
			res.hasAllocs = true
		}
		results.raw[m[1]] = res
		if s := gomaxprocsSuffix.ReplaceAllString(m[1], ""); s != m[1] {
			results.stripped[s] = res
		}
	}
	return results, sc.Err()
}

// tolerances bundles the comparison knobs.
type tolerances struct {
	nsTol      float64 // relative ns/op headroom before a warning
	allocTol   float64 // relative allocs/op headroom before failing
	allocSlack int64   // absolute allocs/op headroom on top of allocTol
}

// compare checks every baseline entry against the measured results, writing
// one line per entry to w. It returns true when any hard check failed.
func compare(w io.Writer, source string, base baselineFile, results benchResults, tol tolerances) bool {
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	for _, name := range names {
		want := base.Benchmarks[name]
		got, ok := results.lookup(name)
		if !ok {
			fmt.Fprintf(w, "skip %-55s not in bench output\n", name)
			continue
		}
		status, detail := "ok  ", fmt.Sprintf("%.0f ns/op (baseline %.0f)", got.nsPerOp, want.NsPerOp)
		if nsLimit := want.NsPerOp * (1 + tol.nsTol); got.nsPerOp > nsLimit {
			status = "WARN"
			detail = fmt.Sprintf("%.0f ns/op exceeds baseline %.0f by more than %.0f%% (informational: ns/op is noisy on CI)",
				got.nsPerOp, want.NsPerOp, tol.nsTol*100)
		}
		if want.AllocsPerOp != nil {
			limit := int64(float64(*want.AllocsPerOp)*(1+tol.allocTol)) + tol.allocSlack
			switch {
			case !got.hasAllocs:
				status = "FAIL"
				detail = "baseline records allocs/op but bench output has none (run with -benchmem or b.ReportAllocs)"
				failed = true
			case got.allocsPerOp > limit:
				status = "FAIL"
				detail = fmt.Sprintf("%d allocs/op exceeds baseline %d (limit %d)", got.allocsPerOp, *want.AllocsPerOp, limit)
				failed = true
			default:
				detail += fmt.Sprintf(", %d allocs/op (baseline %d)", got.allocsPerOp, *want.AllocsPerOp)
			}
		}
		fmt.Fprintf(w, "%s %-55s %s [%s]\n", status, name, detail, source)
	}
	return failed
}

// stringList is a repeatable string flag.
type stringList []string

func (s *stringList) String() string { return fmt.Sprint(*s) }
func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	var baselines stringList
	flag.Var(&baselines, "baseline", "baseline JSON file (repeatable)")
	var (
		input      = flag.String("input", "-", "bench output file, or - for stdin")
		nsTol      = flag.Float64("ns-tol", 0.50, "relative ns/op headroom before warning")
		allocTol   = flag.Float64("alloc-tol", 0.25, "relative allocs/op headroom before failing")
		allocSlack = flag.Int64("alloc-slack", 16, "absolute allocs/op headroom on top of -alloc-tol")
	)
	flag.Parse()
	if len(baselines) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: at least one -baseline is required")
		os.Exit(2)
	}

	in := os.Stdin
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		defer f.Close()
		in = f
	}
	results, err := parseBench(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	tol := tolerances{nsTol: *nsTol, allocTol: *allocTol, allocSlack: *allocSlack}
	failed := false
	for _, path := range baselines {
		raw, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		var base baselineFile
		if err := json.Unmarshal(raw, &base); err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %s: %v\n", path, err)
			os.Exit(2)
		}
		if compare(os.Stdout, path, base, results, tol) {
			failed = true
		}
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchdiff: allocation regression detected")
		os.Exit(1)
	}
}
