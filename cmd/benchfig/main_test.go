package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSingleFigureQuick(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "8", true, 1, 10, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 8 headline") {
		t.Error("missing figure header")
	}
	if !strings.Contains(out, "P/SA ratio") {
		t.Error("missing ratio line")
	}
	if strings.Contains(out, "Figure 2") {
		t.Error("unexpected extra figure")
	}
}

func TestRunExtensionFigure(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "camo", true, 1, 8, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Camouflage ablation") {
		t.Error("missing camouflage section")
	}
}

func TestRunUnknownFigure(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "99", true, 1, 5, false); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestRunAllQuickTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure sweep in -short mode")
	}
	var buf bytes.Buffer
	if err := run(&buf, "all", true, 1, 12, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Figure 2", "Figure 3", "Figure 4", "Figure 5",
		"Figure 6", "Figure 7", "Figure 8",
		"submission strategies under the P-scheme",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing section %q", want)
		}
	}
	// Extensions are not part of "all" (they're behind -fig ext).
	if strings.Contains(out, "Camouflage ablation") {
		t.Error("extension leaked into the core figure sweep")
	}
}

func TestRunExtSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("extension sweep in -short mode")
	}
	var buf bytes.Buffer
	if err := run(&buf, "ext", true, 1, 10, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"all six defenses", "Camouflage", "Boost-side"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing extension section %q", want)
		}
	}
}

func TestRunWithPlot(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "2", true, 1, 10, true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "x: bias, y: stddev") {
		t.Errorf("plot missing from output")
	}
}
