// Command benchfig regenerates the data behind any figure of the paper's
// evaluation section (Figures 2–7 plus the Figure 8 scheme-comparison
// headline) and prints the same rows/series the paper plots.
//
// Usage:
//
//	benchfig -fig 2          # variance–bias scatter under the P-scheme
//	benchfig -fig all -quick # every figure at reduced scale
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/challenge"
	"repro/internal/experiments"
)

func main() {
	var (
		fig    = flag.String("fig", "all", "figure to regenerate: 2|3|4|5|6|7|8|schemes|camo|boost|sweep|ext|all")
		quick  = flag.Bool("quick", false, "reduced scale (fewer submissions, shorter horizon)")
		seed   = flag.Uint64("seed", 42, "master random seed")
		subs   = flag.Int("subs", 0, "override submission count (0 = paper's 251, or 40 with -quick)")
		doPlot = flag.Bool("plot", false, "render ASCII plots for the figures that have them")
	)
	flag.Parse()
	if err := run(os.Stdout, *fig, *quick, *seed, *subs, *doPlot); err != nil {
		fmt.Fprintln(os.Stderr, "benchfig:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, fig string, quick bool, seed uint64, subs int, doPlot bool) error {
	opts := experiments.DefaultOptions()
	if quick {
		opts = experiments.QuickOptions()
	}
	opts.Seed = seed
	if subs > 0 {
		opts.Submissions = subs
	}
	start := time.Now()
	lab, err := experiments.NewLab(opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "# challenge: %d products, %.0f days, %d submissions (seed %d)\n",
		opts.Challenge.Fair.Products, opts.Challenge.Fair.HorizonDays, len(lab.Submissions), seed)

	type runner struct {
		id  string
		fn  func() (fmt.Stringer, error)
		hdr string
	}
	runners := []runner{
		{"2", func() (fmt.Stringer, error) { return lab.Fig2() }, "Figure 2 — variance-bias plot, P-scheme"},
		{"3", func() (fmt.Stringer, error) { return lab.Fig3() }, "Figure 3 — variance-bias plot, SA-scheme"},
		{"4", func() (fmt.Stringer, error) { return lab.Fig4() }, "Figure 4 — variance-bias plot, BF-scheme"},
		{"5", func() (fmt.Stringer, error) { return lab.Fig5() }, "Figure 5 — Procedure 2 optimum-region search"},
		{"6", func() (fmt.Stringer, error) { return lab.Fig6() }, "Figure 6 — MP vs average unfair-rating interval"},
		{"7", func() (fmt.Stringer, error) { return lab.Fig7() }, "Figure 7 — value-ordering (correlation) comparison"},
		{"8", func() (fmt.Stringer, error) { return lab.Fig8() }, "Figure 8 headline — max MP per scheme"},
		{"schemes", func() (fmt.Stringer, error) { return lab.SchemeComparison() }, "Extension — all six defenses compared"},
		{"camo", func() (fmt.Stringer, error) { return lab.CamouflageAblation("P") }, "Extension — trust-bootstrapping camouflage ablation"},
		{"boost", func() (fmt.Stringer, error) { return lab.BoostAnalysis("P") }, "Extension — boost-side analysis (the paper's future work)"},
		{"sweep", func() (fmt.Stringer, error) { return lab.IntervalSweep("P", nil, 3) }, "Extension — controlled arrival-interval sweep (Fig. 6 companion)"},
		{"online", func() (fmt.Stringer, error) { return lab.PublicationAblation() }, "Extension — offline vs online (published-monthly) P-scheme"},
		{"corrsens", func() (fmt.Stringer, error) {
			return lab.CorrelationSensitivity("P", nil, 30, 6, 2)
		}, "Extension — Procedure 3 vs fair-rating spread (Fig. 7 sensitivity)"},
		{"corrj", func() (fmt.Stringer, error) {
			return lab.CorrelationJShape("P", 0.3, 30, 6, 2)
		}, "Extension — Procedure 3 under J-shaped (rave/rant) fair opinions"},
	}
	ran := false
	for _, r := range runners {
		coreFigure := len(r.id) == 1
		if fig != r.id && !(fig == "all" && coreFigure) && fig != "ext" {
			continue
		}
		if fig == "ext" && coreFigure {
			continue
		}
		ran = true
		fmt.Fprintf(w, "\n## %s\n", r.hdr)
		res, err := r.fn()
		if err != nil {
			return fmt.Errorf("figure %s: %w", r.id, err)
		}
		fmt.Fprint(w, res.String())
		if doPlot {
			if p, ok := res.(interface{ Plot() string }); ok {
				fmt.Fprint(w, p.Plot())
			}
		}
	}
	if !ran {
		return fmt.Errorf("unknown figure %q (want 2..8, schemes, camo, boost, ext or all)", fig)
	}
	// A compact per-strategy summary helps relate the population to the
	// figures.
	if fig == "all" {
		if err := printStrategySummary(w, lab); err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "\n# done in %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}

func printStrategySummary(w io.Writer, lab *experiments.Lab) error {
	scored, err := lab.Scored("P")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\n## submission strategies under the P-scheme\n")
	fmt.Fprint(w, challenge.FormatStrategyStats(challenge.StrategyStats(scored)))
	return nil
}
