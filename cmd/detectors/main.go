// Command detectors runs the P-scheme's unfair-rating detector stack (mean
// change, H-ARC/L-ARC arrival-rate change, histogram change, AR model
// error, and the Figure 1 two-path fusion) over a rating dataset and
// reports the suspicious intervals and ratings per product.
//
// Usage:
//
//	attackgen -format json > attacked.json
//	detectors -in attacked.json
//	detectors -demo            # synthesize an attacked dataset first
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/detect"
	"repro/internal/stats"
)

func main() {
	var (
		inPath  = flag.String("in", "", "dataset file (JSON as written by attackgen/dataset.WriteJSON)")
		demo    = flag.Bool("demo", false, "synthesize a demo dataset with one planted attack instead of reading -in")
		verbose = flag.Bool("v", false, "print per-rating marks")
		curves  = flag.String("curves", "", "write the indicator curves (MC, H-ARC, L-ARC, HC, ME) to this CSV file")
	)
	flag.Parse()
	if err := run(os.Stdout, *inPath, *demo, *verbose, *curves); err != nil {
		fmt.Fprintln(os.Stderr, "detectors:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, inPath string, demo, verbose bool, curvesPath string) error {
	d, err := load(inPath, demo)
	if err != nil {
		return err
	}
	var curvesOut io.WriteCloser
	if curvesPath != "" {
		f, err := os.Create(curvesPath)
		if err != nil {
			return err
		}
		curvesOut = f
		defer f.Close()
		fmt.Fprintln(curvesOut, "product,curve,day,value")
	}
	cfg := detect.DefaultConfig()
	for _, p := range d.Products {
		rep := detect.Analyze(p.Ratings, d.HorizonDays, cfg, nil)
		fmt.Fprintf(w, "== product %s: %s ==\n", p.ID, p.Ratings.Stats())
		fmt.Fprintf(w, "  MC peaks %d, suspicious segments %d | H-ARC alarm %v | L-ARC alarm %v | HC windows %d | ME windows %d\n",
			len(rep.MC.Peaks), len(rep.MC.SuspiciousIntervals()),
			rep.HARC.Alarm(), rep.LARC.Alarm(),
			len(rep.HC.Intervals), len(rep.ME.Intervals))
		if len(rep.Intervals) == 0 {
			fmt.Fprintln(w, "  verdict: no suspicious ratings")
			continue
		}
		fmt.Fprintf(w, "  verdict: %d suspicious ratings in %d interval(s):\n",
			rep.SuspiciousCount(), len(rep.Intervals))
		for _, iv := range rep.Intervals {
			fmt.Fprintf(w, "    days %.1f – %.1f\n", iv.Start, iv.End)
		}
		if verbose {
			for i, r := range p.Ratings {
				if rep.Suspicious[i] {
					fmt.Fprintf(w, "    day %7.2f  value %.1f  rater %s\n", r.Day, r.Value, r.Rater)
				}
			}
		}
		// With ground truth (attackgen tags unfair ratings), report
		// detection quality.
		var tp, fp, fn int
		for i, r := range p.Ratings {
			switch {
			case r.Unfair && rep.Suspicious[i]:
				tp++
			case !r.Unfair && rep.Suspicious[i]:
				fp++
			case r.Unfair && !rep.Suspicious[i]:
				fn++
			}
		}
		if tp+fn > 0 {
			fmt.Fprintf(w, "  ground truth: recall %.0f%%, precision %.0f%% (%d unfair ratings)\n",
				100*float64(tp)/float64(tp+fn),
				100*float64(tp)/float64(max(tp+fp, 1)), tp+fn)
		}
		if curvesOut != nil {
			writeCurves(curvesOut, p.ID, rep)
		}
	}
	return nil
}

// writeCurves dumps every indicator curve as flat CSV rows for external
// plotting.
func writeCurves(w io.Writer, product string, rep detect.Report) {
	emit := func(name string, c detect.Curve) {
		for i := range c.X {
			fmt.Fprintf(w, "%s,%s,%.4f,%.6f\n", product, name, c.X[i], c.Y[i])
		}
	}
	emit("MC", rep.MC.Curve)
	emit("H-ARC", rep.HARC.Curve)
	emit("L-ARC", rep.LARC.Curve)
	emit("HC", rep.HC.Curve)
	emit("ME", rep.ME.Curve)
}

func load(inPath string, demo bool) (*dataset.Dataset, error) {
	if demo {
		cfg := dataset.DefaultFairConfig()
		cfg.Products = 2
		d, err := dataset.GenerateFair(stats.NewRNG(11), cfg)
		if err != nil {
			return nil, err
		}
		prod, err := d.Product("tv1")
		if err != nil {
			return nil, err
		}
		gen := core.NewGenerator(12, core.DefaultRaters(50))
		unfair, err := gen.GenerateProduct(core.Profile{
			Bias: -2.6, StdDev: 0.6, Count: 50, StartDay: 50,
			DurationDays: 25, Correlation: core.Independent, Quantize: true,
		}, prod.Ratings)
		if err != nil {
			return nil, err
		}
		if err := d.InjectUnfair("tv1", unfair); err != nil {
			return nil, err
		}
		return d, nil
	}
	if inPath == "" {
		return nil, errors.New("need -in FILE or -demo")
	}
	f, err := os.Open(inPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dataset.ReadJSON(f)
}
