package main

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/stats"
)

func TestRunDemo(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "", true, false, ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "product tv1") {
		t.Error("missing tv1 section")
	}
	if !strings.Contains(out, "suspicious ratings in") {
		t.Errorf("demo attack not flagged:\n%s", out)
	}
	if !strings.Contains(out, "ground truth: recall") {
		t.Error("missing ground-truth line")
	}
	// tv2 has no attack and must be clean.
	if !strings.Contains(out, "verdict: no suspicious ratings") {
		t.Error("clean product not reported clean")
	}
}

func TestRunDemoVerbose(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "", true, true, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "rater biased") {
		t.Error("verbose mode missing per-rating lines")
	}
}

func TestRunFromFile(t *testing.T) {
	cfg := dataset.DefaultFairConfig()
	cfg.Products = 1
	cfg.HorizonDays = 60
	d, err := dataset.GenerateFair(stats.NewRNG(5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/clean.json"
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run(&buf, path, false, false, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no suspicious ratings") {
		t.Errorf("clean dataset flagged:\n%s", buf.String())
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "", false, false, ""); err == nil {
		t.Error("missing input accepted")
	}
	if err := run(&buf, "/no/such/path.json", false, false, ""); err == nil {
		t.Error("unreadable input accepted")
	}
}

func TestRunCurvesExport(t *testing.T) {
	path := t.TempDir() + "/curves.csv"
	var buf bytes.Buffer
	if err := run(&buf, "", true, false, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	if !strings.HasPrefix(out, "product,curve,day,value\n") {
		t.Error("missing CSV header")
	}
	for _, curve := range []string{"MC", "H-ARC", "L-ARC", "HC", "ME"} {
		if !strings.Contains(out, "tv1,"+curve+",") {
			t.Errorf("missing %s rows", curve)
		}
	}
}
